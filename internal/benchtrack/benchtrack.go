// Package benchtrack records benchmark trajectories and detects
// throughput regressions, the performance analogue of the golden-table
// harness: where a golden diff pins an experiment's *output*, a
// trajectory pins its *cost*.
//
// # Schema
//
// A trajectory is the canonical digest of one `go test -bench` run,
// serialized as BENCH_<nnnn>.json ("bench/v1"):
//
//	{
//	  "schema": "bench/v1",
//	  "id": 2,
//	  "note": "post hot-loop pass",
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "pkg": "repro",
//	  "benchmarks": {
//	    "BenchmarkGccFull": {
//	      "samples": 3,
//	      "metrics": {
//	        "ns/op":          {"mean": ..., "min": ..., "max": ...},
//	        "allocs/op":      {"mean": ..., "min": ..., "max": ...},
//	        "detailed_insts": {"mean": ..., "min": ..., "max": ...}
//	      }
//	    }
//	  }
//	}
//
// Benchmark names are canonical: the -<GOMAXPROCS> suffix the testing
// package appends is stripped, and repeated lines from -count=N fold
// into one entry with N samples per metric. Every value/unit pair on a
// benchmark line becomes a metric, so custom b.ReportMetric series
// (insts/s, detailed_insts, speedup) ride along with ns/op, B/op and
// allocs/op.
//
// Files are numbered, never overwritten: BENCH_0001.json is the first
// recorded trajectory, and the comparator always measures a candidate
// against the highest-numbered committed file. Re-blessing after an
// accepted performance change means recording a new file, which keeps
// the whole performance history in the repository.
//
// # Tolerance bands
//
// Comparison is per benchmark, per metric, against a band chosen by
// unit (see DefaultBand): tight for deterministic counters (allocs/op
// must stay within 10% + 2; detailed_insts and speedup within 1–2%),
// wide for wall-clock series (ns/op, insts/s), which vary across
// machines and CI load. A benchmark present in the baseline but
// missing from the candidate is a violation (a deleted benchmark must
// be re-blessed deliberately); a benchmark new in the candidate is
// reported but never fails.
package benchtrack

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Schema identifies the trajectory file format.
const Schema = "bench/v1"

// Metric summarizes the samples of one value/unit series.
type Metric struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Benchmark aggregates the -count repetitions of one benchmark.
type Benchmark struct {
	Samples int               `json:"samples"`
	Metrics map[string]Metric `json:"metrics"`
}

// Trajectory is one recorded benchmark run (see the package comment
// for the serialized form).
type Trajectory struct {
	Schema     string               `json:"schema"`
	ID         int                  `json:"id"`
	Note       string               `json:"note,omitempty"`
	Goos       string               `json:"goos,omitempty"`
	Goarch     string               `json:"goarch,omitempty"`
	CPU        string               `json:"cpu,omitempty"`
	Pkg        string               `json:"pkg,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// series accumulates raw samples during parsing.
type series struct {
	vals map[string][]float64
	n    int
}

// Parse digests raw `go test -bench` output into a trajectory.
// Unrecognized lines (test logs, PASS/ok trailers) are skipped;
// malformed benchmark result lines are an error. At least one
// benchmark line must be present.
func Parse(r io.Reader) (*Trajectory, error) {
	tr := &Trajectory{Schema: Schema, Benchmarks: map[string]Benchmark{}}
	acc := map[string]*series{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			tr.Goos = strings.TrimSpace(line[len("goos: "):])
		case strings.HasPrefix(line, "goarch: "):
			tr.Goarch = strings.TrimSpace(line[len("goarch: "):])
		case strings.HasPrefix(line, "cpu: "):
			tr.CPU = strings.TrimSpace(line[len("cpu: "):])
		case strings.HasPrefix(line, "pkg: "):
			tr.Pkg = strings.TrimSpace(line[len("pkg: "):])
		case strings.HasPrefix(line, "Benchmark"):
			if err := parseResultLine(line, acc); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(acc) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	for name, s := range acc {
		b := Benchmark{Samples: s.n, Metrics: map[string]Metric{}}
		for unit, vals := range s.vals {
			m := Metric{Min: vals[0], Max: vals[0]}
			var sum float64
			for _, v := range vals {
				sum += v
				if v < m.Min {
					m.Min = v
				}
				if v > m.Max {
					m.Max = v
				}
			}
			m.Mean = sum / float64(len(vals))
			b.Metrics[unit] = m
		}
		tr.Benchmarks[name] = b
	}
	return tr, nil
}

// parseResultLine digests one `BenchmarkName-8  N  v unit  v unit...`
// line into the accumulator. A bare "BenchmarkX" line with no fields
// (the name echo printed before the result) is skipped.
func parseResultLine(line string, acc map[string]*series) error {
	// Names and units become JSON object keys; invalid UTF-8 would be
	// silently rewritten to U+FFFD on save, breaking the round trip.
	if !utf8.ValidString(line) {
		return fmt.Errorf("benchmark line is not valid UTF-8: %q", line)
	}
	f := strings.Fields(line)
	if len(f) == 1 {
		return nil // name echo line, result follows on the next line
	}
	if len(f) < 2 || len(f)%2 != 0 {
		return fmt.Errorf("malformed benchmark line %q", line)
	}
	name := canonicalName(f[0])
	iters, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	_ = iters
	s := acc[name]
	if s == nil {
		s = &series{vals: map[string][]float64{}}
		acc[name] = s
	}
	s.n++
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return fmt.Errorf("bad value %q in %q: %v", f[i], line, err)
		}
		unit := f[i+1]
		s.vals[unit] = append(s.vals[unit], v)
	}
	return nil
}

// canonicalName strips the -<GOMAXPROCS> suffix the testing package
// appends, so trajectories recorded at different parallelism compare.
func canonicalName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
