package benchtrack

import (
	"strings"
	"testing"
)

// FuzzParse hammers the raw-output parser with arbitrary text. The
// invariants: no panic; on success the trajectory is well-formed
// (schema tag set, every benchmark has samples and every metric
// min <= mean <= max); and a successful parse survives a JSON round
// trip and compares clean against itself.
func FuzzParse(f *testing.F) {
	f.Add(sampleOutput)
	f.Add("BenchmarkX-16 \t 100\t 12.5 ns/op\t 3 allocs/op\n")
	f.Add("BenchmarkEcho\nBenchmarkEcho-2 1 2 ns/op\n")
	f.Add("goos: linux\ncpu: weird: colons: everywhere\nBenchmarkY 1 1 ns/op\n")
	f.Add("Benchmark")                // prefix only
	f.Add("BenchmarkX 1 1e309 ns/op") // float overflow
	f.Add("BenchmarkX 1 NaN ns/op")   // ParseFloat accepts NaN
	f.Add("PASS\nok\tx\t1s\n")

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		if tr.Schema != Schema {
			t.Fatalf("schema = %q", tr.Schema)
		}
		if len(tr.Benchmarks) == 0 {
			t.Fatal("successful parse with zero benchmarks")
		}
		for name, b := range tr.Benchmarks {
			if b.Samples <= 0 {
				t.Fatalf("%s: %d samples", name, b.Samples)
			}
			for unit, m := range b.Metrics {
				// NaN breaks ordering; all three then disagree, which
				// is fine — just require consistency when comparable.
				if m.Min == m.Min && m.Max == m.Max && (m.Min > m.Mean || m.Mean > m.Max) {
					t.Fatalf("%s %s: min %v mean %v max %v", name, unit, m.Min, m.Mean, m.Max)
				}
			}
		}
		// Round trip through the on-disk form. NaN/Inf are not
		// representable in JSON; Save correctly refuses them.
		if !hasNonFinite(tr) {
			dir := t.TempDir()
			if err := Save(dir+"/BENCH_0001.json", tr); err != nil {
				t.Fatalf("Save: %v", err)
			}
			re, err := Load(dir + "/BENCH_0001.json")
			if err != nil {
				t.Fatalf("Load after Save: %v", err)
			}
			if rep := Compare(tr, re, nil); !rep.OK() {
				t.Fatalf("round trip not self-consistent:\n%s", rep)
			}
		}
	})
}

func hasNonFinite(tr *Trajectory) bool {
	bad := func(v float64) bool {
		return v != v || v > 1.7e308 || v < -1.7e308
	}
	for _, b := range tr.Benchmarks {
		for _, m := range b.Metrics {
			if bad(m.Mean) || bad(m.Min) || bad(m.Max) {
				return true
			}
		}
	}
	return false
}
