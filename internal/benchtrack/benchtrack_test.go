package benchtrack

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGccFull            	       4	 286401563 ns/op	    750000 detailed_insts	 1068224 B/op	     119 allocs/op
BenchmarkGccFull            	       4	 290100000 ns/op	    750000 detailed_insts	 1068230 B/op	     119 allocs/op
BenchmarkGccSampled-8       	      12	  98001111 ns/op	    150000 detailed_insts	         5.000 speedup	 1073061 B/op	     143 allocs/op
BenchmarkSimAlphaThroughput 	      58	  21365910 ns/op	   7582419 insts/s	  809696 B/op	      72 allocs/op
PASS
ok  	repro	195.892s
`

func TestParse(t *testing.T) {
	tr, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Goos != "linux" || tr.Goarch != "amd64" || tr.Pkg != "repro" {
		t.Errorf("header = %q/%q/%q", tr.Goos, tr.Goarch, tr.Pkg)
	}
	if !strings.Contains(tr.CPU, "Xeon") {
		t.Errorf("cpu = %q", tr.CPU)
	}
	if len(tr.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(tr.Benchmarks))
	}

	// -count folding: two GccFull lines become one entry, 2 samples.
	gcc := tr.Benchmarks["BenchmarkGccFull"]
	if gcc.Samples != 2 {
		t.Errorf("GccFull samples = %d, want 2", gcc.Samples)
	}
	ns := gcc.Metrics["ns/op"]
	if ns.Min != 286401563 || ns.Max != 290100000 {
		t.Errorf("ns/op min/max = %v/%v", ns.Min, ns.Max)
	}
	if want := (286401563.0 + 290100000.0) / 2; math.Abs(ns.Mean-want) > 1 {
		t.Errorf("ns/op mean = %v, want %v", ns.Mean, want)
	}

	// The -8 GOMAXPROCS suffix is stripped to the canonical name, and
	// custom metrics survive.
	sampled, ok := tr.Benchmarks["BenchmarkGccSampled"]
	if !ok {
		t.Fatal("BenchmarkGccSampled-8 not canonicalized")
	}
	if sp := sampled.Metrics["speedup"]; sp.Mean != 5.0 {
		t.Errorf("speedup = %v, want 5", sp.Mean)
	}
	if di := sampled.Metrics["detailed_insts"]; di.Mean != 150000 {
		t.Errorf("detailed_insts = %v", di.Mean)
	}
	thr := tr.Benchmarks["BenchmarkSimAlphaThroughput"]
	if is := thr.Metrics["insts/s"]; is.Mean != 7582419 {
		t.Errorf("insts/s = %v", is.Mean)
	}
}

func TestParseRejectsGarbageResultLines(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 12 nope ns/op\n",
		"BenchmarkX notanint 5 ns/op\n",
		"BenchmarkX 1 5\n", // odd field count: value with no unit
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("Parse with no benchmark lines succeeded, want error")
	}
}

func TestParseNameEchoLine(t *testing.T) {
	// Long benchmark names print as a bare name line with the result
	// on the following line.
	out := "BenchmarkVeryLongName\nBenchmarkVeryLongName-8 \t 10\t 100 ns/op\n"
	tr, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := tr.Benchmarks["BenchmarkVeryLongName"]
	if !ok || b.Samples != 1 {
		t.Fatalf("echo-line handling broke: %+v", tr.Benchmarks)
	}
}

// mkTraj builds a single-benchmark trajectory where every metric has
// identical min/mean/max (one sample).
func mkTraj(name string, metrics map[string]float64) *Trajectory {
	b := Benchmark{Samples: 1, Metrics: map[string]Metric{}}
	for u, v := range metrics {
		b.Metrics[u] = Metric{Mean: v, Min: v, Max: v}
	}
	return &Trajectory{Schema: Schema, Benchmarks: map[string]Benchmark{name: b}}
}

// TestCompareBands is the edge-case table the harness promises:
// within-band, outside-band (each direction class), missing benchmark,
// new benchmark.
func TestCompareBands(t *testing.T) {
	base := mkTraj("BenchmarkX", map[string]float64{
		"ns/op":          1_000_000,
		"allocs/op":      100,
		"insts/s":        5_000_000,
		"detailed_insts": 750_000,
	})
	cases := []struct {
		name string
		cand *Trajectory
		ok   bool
		unit string // unit expected to violate when !ok
	}{
		{"identical", mkTraj("BenchmarkX", map[string]float64{
			"ns/op": 1_000_000, "allocs/op": 100, "insts/s": 5_000_000, "detailed_insts": 750_000}), true, ""},
		{"within all bands", mkTraj("BenchmarkX", map[string]float64{
			"ns/op": 1_800_000, "allocs/op": 105, "insts/s": 2_500_000, "detailed_insts": 751_000}), true, ""},
		{"allocs regression outside 10%+2", mkTraj("BenchmarkX", map[string]float64{
			"ns/op": 1_000_000, "allocs/op": 113, "insts/s": 5_000_000, "detailed_insts": 750_000}), false, "allocs/op"},
		{"wall-clock blowup outside 2.5x", mkTraj("BenchmarkX", map[string]float64{
			"ns/op": 2_600_000, "allocs/op": 100, "insts/s": 5_000_000, "detailed_insts": 750_000}), false, "ns/op"},
		{"throughput collapse below floor", mkTraj("BenchmarkX", map[string]float64{
			"ns/op": 1_000_000, "allocs/op": 100, "insts/s": 1_900_000, "detailed_insts": 750_000}), false, "insts/s"},
		{"deterministic drift, either direction", mkTraj("BenchmarkX", map[string]float64{
			"ns/op": 1_000_000, "allocs/op": 100, "insts/s": 5_000_000, "detailed_insts": 700_000}), false, "detailed_insts"},
		{"missing metric skipped", mkTraj("BenchmarkX", map[string]float64{
			"ns/op": 1_000_000}), true, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := Compare(base, c.cand, nil)
			if rep.OK() != c.ok {
				t.Fatalf("OK() = %v, want %v\n%s", rep.OK(), c.ok, rep)
			}
			if !c.ok {
				found := false
				for _, v := range rep.Violations {
					if v.Unit == c.unit {
						found = true
					}
				}
				if !found {
					t.Errorf("no violation for unit %q\n%s", c.unit, rep)
				}
			}
		})
	}
}

func TestCompareMissingAndNewBenchmarks(t *testing.T) {
	base := mkTraj("BenchmarkOld", map[string]float64{"ns/op": 100})
	// Disjoint unit sets: a genuine disappearance plus an unrelated
	// addition, not a rename.
	cand := mkTraj("BenchmarkNew", map[string]float64{"allocs/op": 7})
	rep := Compare(base, cand, nil)
	if rep.OK() {
		t.Fatal("missing baseline benchmark did not fail")
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkOld" {
		t.Errorf("Missing = %v", rep.Missing)
	}
	if len(rep.New) != 1 || rep.New[0] != "BenchmarkNew" {
		t.Errorf("New = %v", rep.New)
	}
	if len(rep.Renamed) != 0 {
		t.Errorf("Renamed = %v, want none (unit sets differ)", rep.Renamed)
	}
	// A new benchmark alone never fails.
	both := mkTraj("BenchmarkOld", map[string]float64{"ns/op": 100})
	both.Benchmarks["BenchmarkNew"] = cand.Benchmarks["BenchmarkNew"]
	if rep := Compare(base, both, nil); !rep.OK() {
		t.Errorf("new benchmark caused failure:\n%s", rep)
	}
}

// TestCompareRenamePairing: a missing baseline benchmark whose
// metric-unit set matches a new candidate benchmark collapses into
// one rename violation; the successor leaves New.
func TestCompareRenamePairing(t *testing.T) {
	units := map[string]float64{"ns/op": 100, "allocs/op": 5}
	base := mkTraj("BenchmarkGccRun", units)
	cand := mkTraj("BenchmarkGccRunSampled", units)
	rep := Compare(base, cand, nil)
	if rep.OK() {
		t.Fatal("rename still fails until the baseline is re-recorded")
	}
	if len(rep.Renamed) != 1 || rep.Renamed[0] != (Rename{From: "BenchmarkGccRun", To: "BenchmarkGccRunSampled"}) {
		t.Fatalf("Renamed = %v", rep.Renamed)
	}
	if len(rep.New) != 0 {
		t.Errorf("New = %v, want empty after pairing", rep.New)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkGccRun" {
		t.Errorf("Missing = %v", rep.Missing)
	}
	if len(rep.Violations) != 1 || !strings.Contains(rep.Violations[0].Msg, "renamed to BenchmarkGccRunSampled") {
		t.Errorf("Violations = %+v, want one rename line", rep.Violations)
	}
	if s := rep.String(); strings.Contains(s, "new benchmark") {
		t.Errorf("String still prints a new-benchmark line:\n%s", s)
	}
}

// TestCompareRenameTieBreak: with two unit-set-compatible candidates,
// the closest name wins and the other stays in New.
func TestCompareRenameTieBreak(t *testing.T) {
	units := map[string]float64{"ns/op": 100}
	base := mkTraj("BenchmarkSweepCell", units)
	cand := mkTraj("BenchmarkSweepCellCached", units)
	cand.Benchmarks["BenchmarkUnrelated"] = cand.Benchmarks["BenchmarkSweepCellCached"]
	rep := Compare(base, cand, nil)
	if len(rep.Renamed) != 1 || rep.Renamed[0].To != "BenchmarkSweepCellCached" {
		t.Fatalf("Renamed = %v, want pairing with the closest name", rep.Renamed)
	}
	if len(rep.New) != 1 || rep.New[0] != "BenchmarkUnrelated" {
		t.Errorf("New = %v, want the unpaired candidate", rep.New)
	}
}

func TestSpeedupBandIsTight(t *testing.T) {
	base := mkTraj("BenchmarkGccSampled", map[string]float64{"speedup": 5.0})
	if rep := Compare(base, mkTraj("BenchmarkGccSampled", map[string]float64{"speedup": 4.5}), nil); rep.OK() {
		t.Error("10% speedup loss passed the 2% band")
	}
	if rep := Compare(base, mkTraj("BenchmarkGccSampled", map[string]float64{"speedup": 4.95}), nil); !rep.OK() {
		t.Error("1% jitter failed the 2% band")
	}
	// Improvement is fine for higher-is-better.
	if rep := Compare(base, mkTraj("BenchmarkGccSampled", map[string]float64{"speedup": 6.0}), nil); !rep.OK() {
		t.Error("speedup improvement flagged as regression")
	}
}

func TestStoreRoundTripAndLatest(t *testing.T) {
	dir := t.TempDir()
	tr, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}

	id, err := NextID(dir)
	if err != nil || id != 1 {
		t.Fatalf("NextID empty dir = %d, %v", id, err)
	}
	tr.ID = id
	tr.Note = "first"
	if err := Save(filepath.Join(dir, FileName(id)), tr); err != nil {
		t.Fatal(err)
	}
	tr2 := *tr
	tr2.ID = 2
	tr2.Note = "second"
	if err := Save(filepath.Join(dir, FileName(2)), &tr2); err != nil {
		t.Fatal(err)
	}

	latest, path, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest.ID != 2 || latest.Note != "second" {
		t.Errorf("Latest = id %d %q (path %s), want 2 \"second\"", latest.ID, latest.Note, path)
	}
	if id, _ := NextID(dir); id != 3 {
		t.Errorf("NextID = %d, want 3", id)
	}

	// Round trip preserves the parsed content.
	re, err := Load(filepath.Join(dir, FileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Benchmarks) != len(tr.Benchmarks) {
		t.Errorf("round trip lost benchmarks: %d vs %d", len(re.Benchmarks), len(tr.Benchmarks))
	}
	got := re.Benchmarks["BenchmarkGccFull"].Metrics["ns/op"]
	want := tr.Benchmarks["BenchmarkGccFull"].Metrics["ns/op"]
	if got != want {
		t.Errorf("round trip changed ns/op: %+v vs %+v", got, want)
	}

	// Self-comparison of a real trajectory is clean.
	if rep := Compare(tr, re, nil); !rep.OK() {
		t.Errorf("self comparison failed:\n%s", rep)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, FileName(1))
	if err := Save(path, &Trajectory{Schema: "bench/v0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("wrong schema accepted")
	}
}
