// Package model is the central backend registry: the single place
// that knows every timing model in the repository by name. Each
// backend registers a typed Descriptor — constructor, content-
// addressable configuration, fidelity tier, and a one-line
// description — and every consumer (the library facade, the service,
// the sweep engine, the validation experiments, the command-line
// tools) resolves machines through it. No layer above this package
// imports a concrete model package; the layering is enforced by a CI
// grep.
//
// Capability flags are not declared — they are *discovered*, by
// interface assertion against a freshly constructed machine
// (core.CheckpointRecorder, core.SampleCapable, core.StackCapable).
// A backend cannot claim a capability its type does not implement,
// and a new capability interface extends every descriptor at once.
package model

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// Tier is a backend's fidelity class. The three tiers trade accuracy
// for cost: detailed models simulate each cycle against the validated
// 21264 microarchitecture; simplified models simulate each cycle of a
// cruder pipeline; analytical models derive cycles from measured
// event counts without per-cycle simulation.
type Tier string

const (
	TierDetailed   Tier = "detailed"
	TierSimplified Tier = "simplified"
	TierAnalytical Tier = "analytical"
)

func (t Tier) valid() bool {
	switch t {
	case TierDetailed, TierSimplified, TierAnalytical:
		return true
	}
	return false
}

// ErrUnknownBackend is wrapped by every lookup and build failure for
// a name or configuration the registry does not know. Callers gate
// on it with errors.Is rather than matching message text.
var ErrUnknownBackend = errors.New("model: unknown backend")

// Capabilities reports what a backend can do, discovered by interface
// assertion (see Descriptor.Capabilities).
type Capabilities struct {
	// Checkpointable: the machine records restorable checkpoints
	// (core.CheckpointRecorder).
	Checkpointable bool `json:"checkpointable"`
	// Samplable: the machine honors Workload.Sample interval
	// sampling (core.SampleCapable).
	Samplable bool `json:"samplable"`
	// CPIStack: the machine's results carry a CPI-stack Breakdown
	// summing exactly to its cycles (core.StackCapable).
	CPIStack bool `json:"cpi_stack"`
}

// Descriptor registers one backend. Config content-addresses the
// machine for result caching — it must be comparable structured data
// whose fingerprint changes whenever timing-relevant behavior does.
type Descriptor struct {
	// Name is the registry key ("sim-alpha", "native-ds10l", ...).
	Name string
	// Description is the one-line catalogue entry.
	Description string
	// Tier is the fidelity class.
	Tier Tier
	// Config is the canonical configuration value (fingerprinted by
	// consumers; never mutated).
	Config any
	// New constructs a fresh machine at the canonical configuration.
	New func() core.Machine
}

// Capabilities discovers the backend's capability flags by asserting
// the relevant interfaces against a fresh machine.
func (d Descriptor) Capabilities() Capabilities {
	m := d.New()
	_, ckpt := m.(core.CheckpointRecorder)
	_, smpl := m.(core.SampleCapable)
	_, stack := m.(core.StackCapable)
	return Capabilities{Checkpointable: ckpt, Samplable: smpl, CPIStack: stack}
}

// registry holds the backends in registration order; byName indexes
// it. Registration happens in this package's init (backends.go), so
// no locking is needed: the maps are read-only after init.
var (
	registry []Descriptor
	byName   = make(map[string]int)
)

// Register adds a backend. It panics on an empty or duplicate name,
// an invalid tier, or a nil constructor — registration errors are
// programming errors, caught by the package's own tests.
func Register(d Descriptor) {
	if d.Name == "" {
		panic("model: Register with empty name")
	}
	if _, dup := byName[d.Name]; dup {
		panic(fmt.Sprintf("model: duplicate backend %q", d.Name))
	}
	if !d.Tier.valid() {
		panic(fmt.Sprintf("model: backend %q has invalid tier %q", d.Name, d.Tier))
	}
	if d.New == nil {
		panic(fmt.Sprintf("model: backend %q has nil constructor", d.Name))
	}
	byName[d.Name] = len(registry)
	registry = append(registry, d)
}

// Backends returns every registered backend in registration order
// (the canonical presentation order: reference first, then the
// detailed simulators, then the cheaper tiers).
func Backends() []Descriptor {
	out := make([]Descriptor, len(registry))
	copy(out, registry)
	return out
}

// ByName resolves a backend name. The bare model name is accepted as
// an alias: "interval" resolves to "sim-interval". Unknown names
// return an error wrapping ErrUnknownBackend that lists what is
// available.
func ByName(name string) (Descriptor, error) {
	if i, ok := byName[name]; ok {
		return registry[i], nil
	}
	if i, ok := byName["sim-"+name]; ok {
		return registry[i], nil
	}
	return Descriptor{}, fmt.Errorf("%w: %q (have %s)", ErrUnknownBackend, name, names())
}

// New constructs a fresh machine for a backend name.
func New(name string) (core.Machine, error) {
	d, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return d.New(), nil
}

// MustNew constructs a machine for a name the caller knows is
// registered; it panics otherwise. For experiment tables and tests.
func MustNew(name string) core.Machine {
	m, err := New(name)
	if err != nil {
		panic(err)
	}
	return m
}

func names() string {
	s := ""
	for i, d := range registry {
		if i > 0 {
			s += ", "
		}
		s += d.Name
	}
	return s
}
