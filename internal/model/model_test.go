package model

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRegistryContents(t *testing.T) {
	want := []struct {
		name string
		tier Tier
	}{
		{"native-ds10l", TierDetailed},
		{"sim-initial", TierDetailed},
		{"sim-alpha", TierDetailed},
		{"sim-stripped", TierDetailed},
		{"sim-outorder", TierSimplified},
		{"sim-inorder", TierSimplified},
		{"sim-interval", TierAnalytical},
		{"sim-alpha-ddr", TierDetailed},
		{"sim-interval-ddr", TierAnalytical},
	}
	got := Backends()
	if len(got) != len(want) {
		t.Fatalf("registry has %d backends, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Name != w.name {
			t.Errorf("backend %d: name %q, want %q", i, got[i].Name, w.name)
		}
		if got[i].Tier != w.tier {
			t.Errorf("%s: tier %q, want %q", w.name, got[i].Tier, w.tier)
		}
		if got[i].Config == nil {
			t.Errorf("%s: nil Config", w.name)
		}
		if got[i].Description == "" {
			t.Errorf("%s: empty description", w.name)
		}
	}
}

func TestNamesMatchMachines(t *testing.T) {
	for _, d := range Backends() {
		if got := d.New().Name(); got != d.Name {
			t.Errorf("descriptor %q constructs machine named %q", d.Name, got)
		}
	}
}

// TestCapabilitiesMatchAssertions checks every backend's discovered
// flags against direct interface assertions on a fresh machine — the
// registry must never diverge from what the types implement.
func TestCapabilitiesMatchAssertions(t *testing.T) {
	for _, d := range Backends() {
		m := d.New()
		_, ckpt := m.(core.CheckpointRecorder)
		_, smpl := m.(core.SampleCapable)
		_, stack := m.(core.StackCapable)
		caps := d.Capabilities()
		if caps.Checkpointable != ckpt || caps.Samplable != smpl || caps.CPIStack != stack {
			t.Errorf("%s: Capabilities() %+v, assertions ckpt=%v smpl=%v stack=%v",
				d.Name, caps, ckpt, smpl, stack)
		}
	}
}

func TestExpectedCapabilities(t *testing.T) {
	want := map[string]Capabilities{
		"native-ds10l":     {Checkpointable: true, Samplable: true, CPIStack: true},
		"sim-initial":      {Checkpointable: true, Samplable: true, CPIStack: true},
		"sim-alpha":        {Checkpointable: true, Samplable: true, CPIStack: true},
		"sim-stripped":     {Checkpointable: true, Samplable: true, CPIStack: true},
		"sim-outorder":     {Checkpointable: true, Samplable: true, CPIStack: true},
		"sim-inorder":      {Checkpointable: true, Samplable: true, CPIStack: true},
		"sim-interval":     {Checkpointable: false, Samplable: false, CPIStack: true},
		"sim-alpha-ddr":    {Checkpointable: true, Samplable: true, CPIStack: true},
		"sim-interval-ddr": {Checkpointable: false, Samplable: false, CPIStack: true},
	}
	for _, d := range Backends() {
		if got, w := d.Capabilities(), want[d.Name]; got != w {
			t.Errorf("%s: capabilities %+v, want %+v", d.Name, got, w)
		}
	}
}

func TestByNameAliases(t *testing.T) {
	exact, err := ByName("sim-interval")
	if err != nil {
		t.Fatal(err)
	}
	bare, err := ByName("interval")
	if err != nil {
		t.Fatalf("bare alias: %v", err)
	}
	if exact.Name != bare.Name {
		t.Errorf("alias resolved to %q, want %q", bare.Name, exact.Name)
	}
}

func TestUnknownBackend(t *testing.T) {
	_, err := ByName("sim-nonesuch")
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("error %v does not wrap ErrUnknownBackend", err)
	}
	if !strings.Contains(err.Error(), "sim-alpha") {
		t.Errorf("error %q does not list available backends", err)
	}
	if _, err := New("sim-nonesuch"); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("New: error %v does not wrap ErrUnknownBackend", err)
	}
}

func TestRegisterPanics(t *testing.T) {
	expectPanic := func(name string, d Descriptor) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(d)
	}
	mk := func() core.Machine { return MustNew("sim-alpha") }
	expectPanic("empty name", Descriptor{Tier: TierDetailed, New: mk})
	expectPanic("duplicate", Descriptor{Name: "sim-alpha", Tier: TierDetailed, New: mk})
	expectPanic("bad tier", Descriptor{Name: "sim-x", Tier: Tier("exact"), New: mk})
	expectPanic("nil constructor", Descriptor{Name: "sim-y", Tier: TierDetailed})
}

func TestBuild(t *testing.T) {
	for _, cfg := range []any{
		DefaultAlphaConfig(),
		SimInitialConfig(),
		DefaultRUUConfig(),
		DefaultInorderConfig(),
		DefaultIntervalConfig(),
		SimAlphaDDRConfig(),
		SimIntervalDDRConfig(),
		RUUDDRConfig{Core: DefaultRUUConfig(), DDR: DefaultDDRConfig()},
		InorderDDRConfig{Core: DefaultInorderConfig(), DDR: DefaultDDRConfig()},
	} {
		m, err := Build(cfg)
		if err != nil {
			t.Fatalf("Build(%T): %v", cfg, err)
		}
		if m == nil {
			t.Fatalf("Build(%T): nil machine", cfg)
		}
	}
	if _, err := Build(struct{ X int }{1}); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("Build on unknown config type: %v does not wrap ErrUnknownBackend", err)
	}
	bad := DefaultAlphaConfig()
	bad.FetchWidth = 0
	if _, err := Build(bad); err == nil {
		t.Error("Build accepted a config failing Check")
	}
	badDDR := SimAlphaDDRConfig()
	badDDR.DDR.RowPolicy = "lru"
	if _, err := Build(badDDR); err == nil {
		t.Error("Build accepted a DDR config failing Check")
	}
}

func TestRegisteredConfigsBuild(t *testing.T) {
	for _, d := range Backends() {
		if d.Name == "native-ds10l" {
			continue // composite identity, constructed only via New
		}
		if _, err := Build(d.Config); err != nil {
			t.Errorf("%s: registered config does not Build: %v", d.Name, err)
		}
	}
}
