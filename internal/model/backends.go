package model

import (
	"fmt"
	"io"

	"repro/internal/alpha"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dcpi"
	"repro/internal/ddr"
	"repro/internal/inorder"
	"repro/internal/interval"
	"repro/internal/native"
	"repro/internal/ruu"
)

// The configuration types of every backend, re-exported as aliases so
// consumers can sweep, fingerprint and mutate configurations without
// importing the concrete model packages. Aliases (not defined types)
// keep the content-addressed cache fingerprints byte-identical: the
// fingerprint renders the underlying type's name.
type (
	// AlphaConfig configures the 21264-family models (sim-alpha,
	// sim-initial, sim-stripped, and the reference's inner model).
	AlphaConfig = alpha.Config
	// RUUConfig configures the SimpleScalar-style RUU model.
	RUUConfig = ruu.Config
	// InorderConfig configures the single-issue in-order model.
	InorderConfig = inorder.Config
	// IntervalConfig configures the analytical interval estimator.
	IntervalConfig = interval.Config
	// DCPIConfig configures the emulated sampling profiler that the
	// reference machine is measured through.
	DCPIConfig = dcpi.Config
	// AlphaPipeTracer receives per-instruction pipeline events when
	// set on an AlphaConfig.
	AlphaPipeTracer = alpha.PipeTracer
	// DDRConfig configures the cycle-accurate DDR memory subsystem a
	// machine can opt into instead of the flat SDRAM model.
	DDRConfig = ddr.Config
)

// The *DDRConfig wrapper types pair a core configuration with a DDR
// memory subsystem. They exist as distinct types (not extra fields on
// the core configs) so the pinned fingerprints of the flat-memory
// backends stay byte-identical: opting into DDR timing produces a new
// configuration identity instead of mutating an existing one.
type (
	// AlphaDDRConfig is a 21264-family machine on the DDR subsystem.
	AlphaDDRConfig struct {
		Core AlphaConfig
		DDR  DDRConfig
	}
	// RUUDDRConfig is the RUU model on the DDR subsystem.
	RUUDDRConfig struct {
		Core RUUConfig
		DDR  DDRConfig
	}
	// InorderDDRConfig is the in-order model on the DDR subsystem.
	InorderDDRConfig struct {
		Core InorderConfig
		DDR  DDRConfig
	}
	// IntervalDDRConfig is the analytical estimator on the DDR
	// subsystem.
	IntervalDDRConfig struct {
		Core IntervalConfig
		DDR  DDRConfig
	}
)

// Canonical configurations, one per registered backend plus the alpha
// variants the experiments sweep from.

// DefaultAlphaConfig returns sim-alpha's validated configuration.
func DefaultAlphaConfig() AlphaConfig { return alpha.DefaultConfig() }

// SimInitialConfig returns the unvalidated initial simulator: the
// validated model plus the Section 3.4 bug catalogue.
func SimInitialConfig() AlphaConfig { return alpha.SimInitial() }

// SimStrippedConfig returns sim-alpha with the Section 5.1 features
// and clock-rate constraints removed.
func SimStrippedConfig() AlphaConfig { return alpha.SimStripped() }

// NativeAlphaConfig returns the reference machine's inner model
// configuration (the DS-10L stand-in before profiler distortion).
func NativeAlphaConfig() AlphaConfig { return alpha.NativeConfig() }

// DefaultRUUConfig returns sim-outorder's configuration.
func DefaultRUUConfig() RUUConfig { return ruu.DefaultConfig() }

// EightWideRUUConfig returns the 8-wide RUU variant of Figure 2.
func EightWideRUUConfig() RUUConfig { return ruu.EightWide() }

// DefaultInorderConfig returns sim-inorder's configuration.
func DefaultInorderConfig() InorderConfig { return inorder.DefaultConfig() }

// DefaultIntervalConfig returns sim-interval's configuration.
func DefaultIntervalConfig() IntervalConfig { return interval.DefaultConfig() }

// DefaultDCPIConfig returns the emulated profiler's configuration.
func DefaultDCPIConfig() DCPIConfig { return dcpi.DefaultConfig() }

// DefaultDDRConfig returns the DS-10L-calibrated DDR subsystem.
func DefaultDDRConfig() DDRConfig { return ddr.DS10LDDR() }

// SimAlphaDDRConfig returns the validated 21264 model on the DDR
// subsystem (the sim-alpha-ddr backend).
func SimAlphaDDRConfig() AlphaDDRConfig {
	c := alpha.DefaultConfig()
	c.MachineName = "sim-alpha-ddr"
	return AlphaDDRConfig{Core: c, DDR: ddr.DS10LDDR()}
}

// SimIntervalDDRConfig returns the analytical estimator on the DDR
// subsystem (the sim-interval-ddr backend).
func SimIntervalDDRConfig() IntervalDDRConfig {
	c := interval.DefaultConfig()
	c.MachineName = "sim-interval-ddr"
	return IntervalDDRConfig{Core: c, DDR: ddr.DS10LDDR()}
}

// AlphaFeatures lists the ten removable 21264 features of Tables 4
// and 5 (addr, eret, luse, pref, spec, stwt, vbuf, maps, slot, trap).
func AlphaFeatures() []string {
	out := make([]string, len(alpha.FeatureNames))
	copy(out, alpha.FeatureNames)
	return out
}

// AlphaPipeTraceWriter returns a tracer writing one text line per
// retired instruction to w (SimpleScalar ptrace's counterpart).
func AlphaPipeTraceWriter(w io.Writer) AlphaPipeTracer {
	return alpha.PipeTraceWriter(w)
}

// Per-family constructors, for consumers that build machines at swept
// or mutated configurations rather than the registered defaults.

// NewAlpha builds a 21264-family machine at cfg.
func NewAlpha(cfg AlphaConfig) core.Machine { return alpha.New(cfg) }

// NewRUU builds an RUU machine at cfg.
func NewRUU(cfg RUUConfig) core.Machine { return ruu.New(cfg) }

// NewInorder builds an in-order machine at cfg.
func NewInorder(cfg InorderConfig) core.Machine { return inorder.New(cfg) }

// NewInterval builds an interval estimator at cfg.
func NewInterval(cfg IntervalConfig) core.Machine { return interval.New(cfg) }

// NewNative builds the reference machine. The concrete type is
// returned because the sampled-simulation experiments need its
// RunExact method (the inner model without profiler distortion).
func NewNative() *native.Machine { return native.New() }

// MeasureDCPI distorts an exact run result the way the emulated
// profiler would measure it.
func MeasureDCPI(cfg DCPIConfig, r core.RunResult) core.RunResult {
	return dcpi.Measure(cfg, r)
}

// Build turns a configuration value into a machine: the registry's
// counterpart for swept configurations, where the config — not a
// backend name — identifies the machine. Unknown configuration types
// return an error wrapping ErrUnknownBackend.
func Build(cfg any) (core.Machine, error) {
	switch c := cfg.(type) {
	case AlphaConfig:
		if err := c.Check(); err != nil {
			return nil, err
		}
		return alpha.New(c), nil
	case RUUConfig:
		if err := c.Check(); err != nil {
			return nil, err
		}
		return ruu.New(c), nil
	case InorderConfig:
		return inorder.New(c), nil
	case IntervalConfig:
		if err := c.Check(); err != nil {
			return nil, err
		}
		return interval.New(c), nil
	case AlphaDDRConfig:
		if err := c.Core.Check(); err != nil {
			return nil, err
		}
		if err := c.DDR.Check(); err != nil {
			return nil, err
		}
		return alpha.NewWithMemory(c.Core, newDDR(c.DDR)), nil
	case RUUDDRConfig:
		if err := c.Core.Check(); err != nil {
			return nil, err
		}
		if err := c.DDR.Check(); err != nil {
			return nil, err
		}
		return ruu.NewWithMemory(c.Core, newDDR(c.DDR)), nil
	case InorderDDRConfig:
		if err := c.DDR.Check(); err != nil {
			return nil, err
		}
		return inorder.NewWithMemory(c.Core, newDDR(c.DDR)), nil
	case IntervalDDRConfig:
		if err := c.Core.Check(); err != nil {
			return nil, err
		}
		if err := c.DDR.Check(); err != nil {
			return nil, err
		}
		return interval.NewWithMemory(c.Core, newDDR(c.DDR)), nil
	}
	return nil, fmt.Errorf("%w: no builder for config type %T", ErrUnknownBackend, cfg)
}

// newDDR is the memory-backend factory handed to NewWithMemory: each
// machine run gets a fresh controller at the given configuration.
func newDDR(cfg DDRConfig) func() cache.Memory {
	return func() cache.Memory { return ddr.New(cfg) }
}

// nativeIdentity content-addresses the reference machine: its inner
// model configuration plus the profiler distorting the measurement.
type nativeIdentity struct {
	Model AlphaConfig
	Prof  DCPIConfig
}

func init() {
	Register(Descriptor{
		Name:        "native-ds10l",
		Description: "reference DS-10L measured through the DCPI profiler emulation",
		Tier:        TierDetailed,
		Config:      nativeIdentity{Model: alpha.NativeConfig(), Prof: dcpi.DefaultConfig()},
		New:         func() core.Machine { return native.New() },
	})
	Register(Descriptor{
		Name:        "sim-initial",
		Description: "unvalidated first simulator version (full bug catalogue)",
		Tier:        TierDetailed,
		Config:      alpha.SimInitial(),
		New:         func() core.Machine { return alpha.New(alpha.SimInitial()) },
	})
	Register(Descriptor{
		Name:        "sim-alpha",
		Description: "validated 21264 model (the paper's calibrated simulator)",
		Tier:        TierDetailed,
		Config:      alpha.DefaultConfig(),
		New:         func() core.Machine { return alpha.New(alpha.DefaultConfig()) },
	})
	Register(Descriptor{
		Name:        "sim-stripped",
		Description: "sim-alpha with the Section 5.1 features and constraints removed",
		Tier:        TierDetailed,
		Config:      alpha.SimStripped(),
		New:         func() core.Machine { return alpha.New(alpha.SimStripped()) },
	})
	Register(Descriptor{
		Name:        "sim-outorder",
		Description: "SimpleScalar-style RUU/LSQ out-of-order model",
		Tier:        TierSimplified,
		Config:      ruu.DefaultConfig(),
		New:         func() core.Machine { return ruu.New(ruu.DefaultConfig()) },
	})
	Register(Descriptor{
		Name:        "sim-inorder",
		Description: "in-order pipeline with DS-10L-like caches",
		Tier:        TierSimplified,
		Config:      inorder.DefaultConfig(),
		New:         func() core.Machine { return inorder.New(inorder.DefaultConfig()) },
	})
	Register(Descriptor{
		Name:        "sim-interval",
		Description: "analytical interval-model estimator priced from measured events",
		Tier:        TierAnalytical,
		Config:      interval.DefaultConfig(),
		New:         func() core.Machine { return interval.New(interval.DefaultConfig()) },
	})
	Register(Descriptor{
		Name:        "sim-alpha-ddr",
		Description: "validated 21264 model on the cycle-accurate DDR memory subsystem",
		Tier:        TierDetailed,
		Config:      SimAlphaDDRConfig(),
		New: func() core.Machine {
			c := SimAlphaDDRConfig()
			return alpha.NewWithMemory(c.Core, newDDR(c.DDR))
		},
	})
	Register(Descriptor{
		Name:        "sim-interval-ddr",
		Description: "analytical interval estimator on the cycle-accurate DDR memory subsystem",
		Tier:        TierAnalytical,
		Config:      SimIntervalDDRConfig(),
		New: func() core.Machine {
			c := SimIntervalDDRConfig()
			return interval.NewWithMemory(c.Core, newDDR(c.DDR))
		},
	})
}
