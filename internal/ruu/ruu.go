// Package ruu implements a SimpleScalar sim-outorder-style timing
// model: a five-stage pipeline built around a Register Update Unit
// that combines the physical register file, reorder buffer and issue
// window into one structure, with generic (unclustered, unslotted)
// function units, a two-level adaptive branch predictor with a BTB,
// and no replay traps — the abstract machine organization the paper
// contrasts with the validated 21264 model.
//
// Because it omits the clock-rate constraints of a real design (deep
// pipeline, clustering, line prediction, traps), this model
// systematically overestimates performance, which is exactly the
// behavior Table 3 documents (+36.7% mean versus the native machine).
package ruu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/predict"
	"repro/internal/vm"
)

// Config describes one RUU machine.
type Config struct {
	MachineName string

	FetchWidth  int // instructions fetched per cycle
	DecodeWidth int
	IssueWidth  int
	CommitWidth int
	RUUSize     int // combined window (paper configuration: 64)
	LSQSize     int
	// RenameRegs models the modified sim-outorder of Table 5, where
	// the physical register file is a separate structure: dispatch
	// stalls when in-flight destinations exhaust the pool (per file).
	RenameRegs int

	IntALU   int // generic integer ALUs (4)
	IntMul   int // integer multipliers (1)
	FPALU    int // FP adders (4)
	FPMulDiv int // FP multiply/divide units (1)
	MemPorts int // cache ports (2)

	// Register-file experiments (Figure 2).
	RFReadCycles  int  // register-file read latency (1 = fully bypassed baseline)
	PartialBypass bool // restrict bypassing at 2-cycle read latency

	BrPenalty  int // extra cycles after branch resolution on a mispredict
	GShareBits int // global predictor index bits
	BTBSets    int
	BTBAssoc   int
	RASEntries int

	Hier      cache.HierarchyConfig
	DRAM      dram.Config
	NewMapper func() vm.Mapper
}

// DefaultConfig returns sim-outorder configured as in Section 5.1: a
// 64-entry RUU and LSQ, caches matching the 21264, and a flat
// 62-cycle DRAM.
func DefaultConfig() Config {
	hier := cache.DS10L()
	hier.VictimEntries = 0 // sim-outorder models no victim buffer
	hier.L2.HitLatency = 6 // SimpleScalar's default dl2 hit latency
	return Config{
		MachineName:  "sim-outorder",
		FetchWidth:   4,
		DecodeWidth:  4,
		IssueWidth:   4,
		CommitWidth:  4,
		RUUSize:      64,
		LSQSize:      64,
		IntALU:       4,
		IntMul:       1,
		FPALU:        4,
		FPMulDiv:     1,
		MemPorts:     2,
		RFReadCycles: 1,
		BrPenalty:    2,
		GShareBits:   12,
		BTBSets:      512,
		BTBAssoc:     4,
		RASEntries:   8,
		Hier:         hier,
		DRAM:         flatDRAM(),
		NewMapper:    func() vm.Mapper { return &vm.SeqMapper{} },
	}
}

// EightWide returns the 8-way issue configuration used as the
// abstract comparison simulator in the Figure 2 register-file study.
func EightWide() Config {
	cfg := DefaultConfig()
	cfg.MachineName = "abstract-8way"
	cfg.FetchWidth = 8
	cfg.DecodeWidth = 8
	cfg.IssueWidth = 8
	cfg.CommitWidth = 8
	cfg.RUUSize = 128
	cfg.LSQSize = 128
	cfg.IntALU = 8
	cfg.IntMul = 2
	cfg.FPALU = 8
	cfg.FPMulDiv = 2
	cfg.MemPorts = 4
	return cfg
}

// flatDRAM approximates sim-outorder's fixed memory latency:
// closed-page constant timing with enough banks to avoid conflicts.
// The paper used a flat 62 cycles against its 466 MHz hardware; here
// the constant is scaled the same way relative to this repository's
// reference machine (whose tuned controller reaches ~50-cycle page
// hits), preserving the property that the abstract simulator's
// memory is optimistic: no page misses, no bank conflicts, no
// controller queueing.
func flatDRAM() dram.Config {
	return dram.Config{
		Banks:            64,
		RowBytes:         4096,
		RASCycles:        2,
		CASCycles:        4,
		PrechargeCycles:  2,
		TransferCycles:   3,
		ControllerCycles: 2,
		ClockRatio:       4,
		OpenPage:         false,
	}
}

// Machine is an RUU-based timing model implementing core.Machine.
type Machine struct {
	cfg Config
	// newMem, when set, builds the main-memory backend instead of the
	// flat SDRAM model from cfg.DRAM (see alpha.Machine for why this
	// lives outside Config: pinned fingerprints must not change).
	newMem func() cache.Memory
}

// Check verifies the configuration is runnable.
func (c Config) Check() error {
	switch {
	case c.FetchWidth <= 0 || c.DecodeWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("ruu: widths must be positive")
	case c.RUUSize < 2*c.FetchWidth:
		return fmt.Errorf("ruu: RUU %d too small for fetch width %d", c.RUUSize, c.FetchWidth)
	case c.LSQSize <= 0:
		return fmt.Errorf("ruu: LSQ must be positive")
	case c.GShareBits <= 0 || c.BTBSets <= 0 || c.BTBAssoc <= 0 || c.RASEntries <= 0:
		return fmt.Errorf("ruu: predictor geometry must be positive")
	case c.RFReadCycles < 1:
		return fmt.Errorf("ruu: RFReadCycles must be at least 1")
	case c.NewMapper == nil:
		return fmt.Errorf("ruu: NewMapper is required")
	}
	return nil
}

// New returns a machine for the configuration; it panics on a
// degenerate configuration (a programming error).
func New(cfg Config) *Machine {
	if err := cfg.Check(); err != nil {
		panic(err)
	}
	return &Machine{cfg: cfg}
}

// NewWithMemory returns a machine whose hierarchy sits on the memory
// backend the factory builds instead of the flat SDRAM from cfg.DRAM.
func NewWithMemory(cfg Config, newMem func() cache.Memory) *Machine {
	m := New(cfg)
	m.newMem = newMem
	return m
}

// memory builds the machine's main-memory backend.
func (m *Machine) memory() cache.Memory {
	if m.newMem != nil {
		return m.newMem()
	}
	return dram.New(m.cfg.DRAM)
}

// Name implements core.Machine.
func (m *Machine) Name() string { return m.cfg.MachineName }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Run implements core.Machine.
func (m *Machine) Run(w core.Workload) (core.RunResult, error) {
	if err := w.CheckRestore(); err != nil {
		return core.RunResult{}, err
	}
	var s *sim
	if w.Checkpoint != nil {
		var err error
		if s, err = m.restoreSim(w); err != nil {
			return core.RunResult{}, err
		}
	} else {
		cur := core.NewSampleCursor(w.Sample)
		s = newSim(m.cfg, m.memory(), cur.Wrap(w.Source()))
		s.cur = cur
	}
	cur := s.cur
	cur.SetSync(func(c *events.Collector) {
		s.hier.FoldMemEvents(c)
	})
	// Functional warming: keep the caches warm through sampling skips
	// (per-line on the I-side, as fetch does). The gshare predictor is
	// left to the warmup window — its index couples to the speculative
	// global history, which a non-pipelined update would desynchronize.
	cur.SetWarm(warmer(s.hier))
	if w.WarmFastForward > 0 {
		// Cold half of the checkpoint determinism invariant: consume
		// the prefix through the warming path, then time the rest.
		warm := warmer(s.hier)
		for i := uint64(0); i < w.WarmFastForward; i++ {
			rec, ok := s.src.Next()
			if !ok {
				return core.RunResult{}, fmt.Errorf("%s/%s: stream ended at %d instructions during warm fast-forward (wanted %d)",
					m.cfg.MachineName, w.Name, i, w.WarmFastForward)
			}
			warm(rec)
		}
	}
	if err := s.run(); err != nil {
		return core.RunResult{}, fmt.Errorf("%s/%s: %w", m.cfg.MachineName, w.Name, err)
	}
	s.hier.FoldMemEvents(&s.col)
	stack := s.col.Finish(s.cycle)
	res := core.RunResult{
		Machine:      m.cfg.MachineName,
		Workload:     w.Name,
		Instructions: s.retired,
		Cycles:       s.cycle,
		Counters:     s.col.Counters(events.ModelRUU),
		Breakdown:    &stack,
	}
	cur.Finalize(&res, events.ModelRUU)
	return res, nil
}

type entry struct {
	rec     cpu.Record
	inum    uint64
	cls     isa.Class
	hasDest bool
	destFP  bool
	srcs    [3]uint64
	nsrc    int

	availAt      uint64
	mapped       bool
	mapAt        uint64
	issued       bool
	readyAt      uint64
	doneAt       uint64
	resolved     bool
	mispredicted bool
	isMem        bool

	// CPI-stack attribution.
	fetchMiss bool             // delivered by a fetch that missed the I-cache
	memMiss   bool             // load whose data came from beyond the L1
	memComp   events.Component // hierarchy level that served the miss
}

// btb is a small set-associative branch target buffer.
type btb struct {
	sets, assoc int
	tags        []uint64
	targets     []uint64
	valid       []bool
	age         []uint64
	clock       uint64
}

func newBTB(sets, assoc int) *btb {
	n := sets * assoc
	return &btb{sets: sets, assoc: assoc,
		tags: make([]uint64, n), targets: make([]uint64, n),
		valid: make([]bool, n), age: make([]uint64, n)}
}

func (b *btb) lookup(pc uint64) (uint64, bool) {
	set := int(pc>>2) % b.sets
	for w := 0; w < b.assoc; w++ {
		i := set*b.assoc + w
		if b.valid[i] && b.tags[i] == pc {
			b.clock++
			b.age[i] = b.clock
			return b.targets[i], true
		}
	}
	return 0, false
}

func (b *btb) insert(pc, target uint64) {
	set := int(pc>>2) % b.sets
	victim, oldest := set*b.assoc, uint64(1)<<63
	for w := 0; w < b.assoc; w++ {
		i := set*b.assoc + w
		if !b.valid[i] {
			victim = i
			break
		}
		if b.valid[i] && b.tags[i] == pc {
			victim = i
			break
		}
		if b.age[i] < oldest {
			oldest = b.age[i]
			victim = i
		}
	}
	b.clock++
	b.tags[victim] = pc
	b.targets[victim] = target
	b.valid[victim] = true
	b.age[victim] = b.clock
}

type sim struct {
	cfg  Config
	src  cpu.Source
	hier *cache.Hierarchy

	gshare []predict.SatCounter
	ghist  uint32
	btb    *btb
	ras    *predict.RAS

	// pend is the fetched-from-stream lookahead, a fixed ring sized at
	// construction so the steady-state fetch path allocates nothing.
	pend     []cpu.Record
	pendHead int
	pendLen  int
	srcDone  bool

	rob         []entry
	head        int
	count       int
	nextInum    uint64
	headInum    uint64
	lastWriter  [2][isa.NumRegs]uint64
	readyByInum [4096]uint64

	// Scan accelerators, mirroring the alpha model: entries dispatch in
	// program order, so the oldest unmapped entry is always at mapInum;
	// everything older than issueBase has issued; wakeAt is the
	// earliest outstanding completion, gating the resolution scan; and
	// issueIdleUntil lets the issue scan sleep when a full pass proved
	// nothing can become eligible before a known cycle. outstanding
	// counts issued-but-unresolved entries so the resolution scan can
	// stop early.
	mapInum        uint64
	issueBase      uint64
	wakeAt         uint64
	issueIdleUntil uint64
	outstanding    int

	lsqCount    int
	intInFlight int
	fpInFlight  int

	cycle   uint64
	retired uint64

	fetchBlockedUntil uint64
	waitBranch        uint64
	fpDivBusyUntil    uint64

	// col accumulates typed event counts and CPI-stack attribution
	// (the unified instrumentation layer, internal/events).
	col events.Collector
	// fetchBlockReason remembers why the front end was last stalled so
	// a no-commit cycle can be charged to the right component.
	fetchBlockReason events.Component
	// cur drives interval sampling when the workload requests it
	// (nil — and every call on it a no-op — for full runs).
	cur *core.SampleCursor
}

func newSim(cfg Config, mem cache.Memory, src cpu.Source) *sim {
	s := &sim{
		cfg:       cfg,
		src:       src,
		hier:      cache.NewHierarchy(cfg.Hier, cfg.NewMapper(), mem),
		gshare:    make([]predict.SatCounter, 1<<cfg.GShareBits),
		btb:       newBTB(cfg.BTBSets, cfg.BTBAssoc),
		ras:       predict.NewRAS(cfg.RASEntries),
		pend:      make([]cpu.Record, 2*cfg.FetchWidth),
		rob:       make([]entry, cfg.RUUSize),
		nextInum:  1,
		headInum:  1,
		mapInum:   1,
		issueBase: 1,
		wakeAt:    noWake,
	}
	for i := range s.gshare {
		s.gshare[i] = predict.NewSatCounter(2, 1)
	}
	return s
}

func (s *sim) predictDir(pc uint64) (bool, int) {
	idx := int((pc>>2)^uint64(s.ghist)) & (len(s.gshare) - 1)
	return s.gshare[idx].Taken(), idx
}

func (s *sim) trainDir(idx int, taken bool) {
	if taken {
		s.gshare[idx].Inc()
	} else {
		s.gshare[idx].Dec()
	}
	s.ghist = s.ghist<<1 | b2u(taken)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (s *sim) inFlight(inum uint64) bool {
	return inum >= s.headInum && inum < s.headInum+uint64(s.count)
}

// noWake is wakeAt's idle value: no completion pending.
const noWake = ^uint64(0)

// idx maps an offset from the window head to a slot index; offsets
// are always < len(rob), so a conditional subtract replaces modulo.
func (s *sim) idx(off int) int {
	off += s.head
	if n := len(s.rob); off >= n {
		off -= n
	}
	return off
}

// schedule lowers the wake time to t if it is earlier.
func (s *sim) schedule(t uint64) {
	if t < s.wakeAt {
		s.wakeAt = t
	}
}

func (s *sim) at(inum uint64) *entry {
	return &s.rob[s.idx(int(inum-s.headInum))]
}

func (s *sim) run() error {
	const cycleCap = 1 << 34
	for {
		if s.count == 0 && s.srcDone && s.pendLen == 0 {
			return nil
		}
		before := s.retired
		s.commit()
		if s.retired == before {
			// Nothing committed this cycle: charge it to the component
			// blocking the head of the window. Cycles that do commit
			// land in the base component (see Collector.Finish).
			s.col.Attribute(s.classifyStall(), 1)
		}
		s.issue()
		s.dispatch()
		s.fetch()
		s.cycle++
		if s.cycle > cycleCap {
			return fmt.Errorf("ruu: cycle cap exceeded (deadlock?)")
		}
	}
}

// blockFetch stalls the front end until the given cycle, recording
// the CPI-stack component responsible when it extends the stall.
func (s *sim) blockFetch(until uint64, why events.Component) {
	if s.fetchBlockedUntil < until {
		s.fetchBlockedUntil = until
		s.fetchBlockReason = why
	}
}

// classifyStall attributes one cycle in which nothing committed to
// the CPI-stack component that caused it, judged from the oldest
// instruction's state — head-of-window stall accounting, the same
// discipline the alpha model uses.
func (s *sim) classifyStall() events.Component {
	if s.count > 0 {
		e := &s.rob[s.head]
		switch {
		case !e.mapped:
			if s.cycle < e.availAt && e.fetchMiss {
				return events.CompICache // still in flight from a missed fetch
			}
			return events.CompFrontend // LSQ/rename/decode pressure
		case !e.issued:
			if comp, ok := s.producerMemStall(e); ok {
				return comp // waiting on an outstanding data miss
			}
			return events.CompBase // dependence or structural issue limit
		default:
			if e.memMiss && s.cycle < e.doneAt {
				return e.memComp // its own data miss is outstanding
			}
			if s.waitBranch != 0 {
				return events.CompBranch // draining behind a mispredict
			}
			return events.CompBase // execution latency
		}
	}
	// Window empty: the front end is refilling.
	if s.cycle < s.fetchBlockedUntil {
		return s.fetchBlockReason
	}
	if s.waitBranch != 0 {
		return events.CompBranch
	}
	return events.CompFrontend
}

// producerMemStall reports whether e is waiting on a producer whose
// result is an outstanding cache miss, and at which hierarchy level.
func (s *sim) producerMemStall(e *entry) (events.Component, bool) {
	for i := 0; i < e.nsrc; i++ {
		p := e.srcs[i]
		if p == 0 || !s.inFlight(p) {
			continue
		}
		pe := s.at(p)
		if pe.issued && pe.memMiss && s.cycle < pe.readyAt {
			return pe.memComp, true
		}
	}
	return 0, false
}

func (s *sim) commit() {
	// Resolve completions. Completion times are fixed at issue, so the
	// scan sleeps until the earliest of them (wakeAt) and stops once
	// every outstanding entry has been seen.
	if s.cycle >= s.wakeAt {
		next := uint64(noWake)
		rem := s.outstanding
		ix := s.head
		for i := 0; i < s.count && rem > 0; i++ {
			e := &s.rob[ix]
			if ix++; ix == len(s.rob) {
				ix = 0
			}
			if !e.issued || e.resolved {
				continue
			}
			rem--
			if s.cycle >= e.doneAt {
				e.resolved = true
				s.outstanding--
				if e.mispredicted && s.waitBranch == e.inum {
					s.blockFetch(e.doneAt+uint64(s.cfg.BrPenalty), events.CompBranch)
					s.waitBranch = 0
				}
			} else if e.doneAt < next {
				next = e.doneAt
			}
		}
		s.wakeAt = next
	}
	// In-order commit.
	n := 0
	for s.count > 0 && n < s.cfg.CommitWidth {
		e := &s.rob[s.head]
		if !e.resolved || s.cycle < e.doneAt {
			break
		}
		if e.isMem {
			s.lsqCount--
		}
		if e.hasDest && e.mapped {
			if e.destFP {
				s.fpInFlight--
			} else {
				s.intInFlight--
			}
		}
		s.head = (s.head + 1) % len(s.rob)
		s.count--
		s.headInum++
		s.retired++
		s.cur.OnRetire(s.retired, s.cycle, &s.col)
		n++
	}
	if n > 0 {
		s.issueIdleUntil = 0
	}
}

func (s *sim) srcsReadyAt(e *entry) (uint64, bool) {
	var latest uint64
	for i := 0; i < e.nsrc; i++ {
		p := e.srcs[i]
		if p == 0 {
			continue
		}
		var t uint64
		if s.inFlight(p) {
			pe := s.at(p)
			if !pe.issued {
				return 0, false
			}
			t = pe.readyAt
		} else if e.inum-p < uint64(len(s.readyByInum)) {
			t = s.readyByInum[p%uint64(len(s.readyByInum))]
		} else {
			continue
		}
		// Register-file depth / bypass restriction (Figure 2).
		extra := uint64(s.cfg.RFReadCycles - 1)
		if s.cfg.PartialBypass {
			extra *= 2
		}
		t += extra
		if t > latest {
			latest = t
		}
	}
	return latest, true
}

func latency(cls isa.Class) int {
	switch cls {
	case isa.ClassIntALU, isa.ClassCondBr, isa.ClassUncondBr,
		isa.ClassIntStore, isa.ClassFPStore:
		return 1
	case isa.ClassIntMul:
		return 7
	case isa.ClassFPAdd, isa.ClassFPMul:
		return 4
	case isa.ClassFPDivS:
		return 12
	case isa.ClassFPDivT:
		return 15
	case isa.ClassFPSqrtS:
		return 18
	case isa.ClassFPSqrtT:
		return 33
	case isa.ClassJump:
		return 1 // no deep front end to restart
	}
	return 1
}

func (s *sim) issue() {
	if s.cycle < s.issueIdleUntil {
		return
	}
	if s.issueBase < s.headInum {
		s.issueBase = s.headInum
	}
	for s.issueBase < s.headInum+uint64(s.count) && s.at(s.issueBase).issued {
		s.issueBase++
	}
	start := int(s.issueBase - s.headInum)
	end := int(s.mapInum - s.headInum)
	if end > s.count {
		end = s.count
	}
	if start >= end {
		return
	}

	left := s.cfg.IssueWidth
	intALU, intMul := s.cfg.IntALU, s.cfg.IntMul
	fpALU, fpMD := s.cfg.FPALU, s.cfg.FPMulDiv
	mem := s.cfg.MemPorts

	// As in the alpha model: if the whole scan issues nothing, queue
	// state is frozen until a collected wake time, a dispatch, or a
	// commit, and the stage sleeps. Structural skips with no knowable
	// wake time pin the scan awake.
	issuedAny := false
	noSkip := false
	idleUntil := uint64(noWake)
	deferUntil := func(t uint64) {
		if t < idleUntil {
			idleUntil = t
		}
	}

	ix := s.idx(start)
	for i := start; i < end && left > 0; i++ {
		e := &s.rob[ix]
		if ix++; ix == len(s.rob) {
			ix = 0
		}
		if !e.mapped || e.issued {
			continue
		}
		if s.cycle <= e.mapAt {
			deferUntil(e.mapAt + 1)
			continue
		}
		ready, ok := s.srcsReadyAt(e)
		if !ok || ready > s.cycle {
			if ok {
				deferUntil(ready) // unissued producers gate via their own entries
			}
			continue
		}
		lat := latency(e.cls)
		switch {
		case e.cls.IsMem():
			if mem == 0 {
				noSkip = true
				continue
			}
			mem--
			res := s.hier.Data(e.rec.EA, e.cls.IsStore(), s.cycle)
			if !res.L1Hit && !res.VBHit {
				s.col.Count(events.DCacheMisses, 1)
				if !res.L2Hit {
					s.col.Count(events.L2Misses, 1)
				}
				if e.cls.IsLoad() {
					e.memMiss = true
					e.memComp = events.CompDCache
					if !res.L2Hit {
						e.memComp = events.CompL2
					}
				}
			}
			lat = res.Latency + res.WalkCycles
			if e.cls.IsStore() {
				lat = 1
			}
			if e.cls == isa.ClassFPLoad {
				lat++
			}
		case e.cls == isa.ClassIntMul:
			if intMul == 0 {
				noSkip = true
				continue
			}
			intMul--
		case e.cls == isa.ClassFPAdd:
			if fpALU == 0 {
				noSkip = true
				continue
			}
			fpALU--
		case e.cls == isa.ClassFPMul, e.cls == isa.ClassFPDivS, e.cls == isa.ClassFPDivT,
			e.cls == isa.ClassFPSqrtS, e.cls == isa.ClassFPSqrtT:
			if fpMD == 0 {
				noSkip = true
				continue
			}
			if e.cls != isa.ClassFPMul && s.cycle < s.fpDivBusyUntil {
				deferUntil(s.fpDivBusyUntil)
				continue
			}
			if e.cls != isa.ClassFPMul {
				s.fpDivBusyUntil = s.cycle + uint64(lat)
			}
			fpMD--
		default:
			if intALU == 0 {
				noSkip = true
				continue
			}
			intALU--
		}
		left--
		issuedAny = true
		e.issued = true
		s.outstanding++
		e.readyAt = s.cycle + uint64(lat)
		e.doneAt = e.readyAt
		s.readyByInum[e.inum%uint64(len(s.readyByInum))] = e.readyAt
		s.schedule(e.doneAt)
	}
	if !issuedAny && !noSkip {
		s.issueIdleUntil = idleUntil
	}
}

func (s *sim) dispatch() {
	for n := 0; n < s.cfg.DecodeWidth; n++ {
		// Entries dispatch strictly in program order, so the oldest
		// unmapped one is always at mapInum — no scan.
		if s.mapInum >= s.headInum+uint64(s.count) {
			break
		}
		e := s.at(s.mapInum)
		if s.cycle < e.availAt {
			break
		}
		if e.isMem && s.lsqCount >= s.cfg.LSQSize {
			break
		}
		if e.hasDest && s.cfg.RenameRegs > 0 {
			if e.destFP && s.fpInFlight >= s.cfg.RenameRegs {
				break
			}
			if !e.destFP && s.intInFlight >= s.cfg.RenameRegs {
				break
			}
		}
		e.mapped = true
		e.mapAt = s.cycle
		s.mapInum++
		s.issueIdleUntil = 0 // new window entry: the issue scan must look again
		if e.isMem {
			s.lsqCount++
		}
		if e.hasDest {
			if e.destFP {
				s.fpInFlight++
			} else {
				s.intInFlight++
			}
		}
		if e.cls == isa.ClassNop || e.cls == isa.ClassHalt {
			// sim-outorder treats no-ops as single-cycle ALU ops; they
			// retire without occupying function units.
			e.issued = true
			e.resolved = true
			e.readyAt = s.cycle + 1
			e.doneAt = s.cycle + 1
		}
	}
}

func (s *sim) fill() {
	for !s.srcDone && s.pendLen < len(s.pend) {
		rec, ok := s.src.Next()
		if !ok {
			s.srcDone = true
			return
		}
		i := s.pendHead + s.pendLen
		if i >= len(s.pend) {
			i -= len(s.pend)
		}
		s.pend[i] = rec
		s.pendLen++
	}
}

// pendAt returns the i-th lookahead record (0 = oldest).
func (s *sim) pendAt(i int) *cpu.Record {
	i += s.pendHead
	if i >= len(s.pend) {
		i -= len(s.pend)
	}
	return &s.pend[i]
}

func (s *sim) fetch() {
	if s.waitBranch != 0 || s.cycle < s.fetchBlockedUntil {
		return
	}
	s.fill()
	if s.pendLen == 0 {
		return
	}
	if s.count+s.cfg.FetchWidth > len(s.rob) {
		return
	}
	// Fetch up to width, ending at the first taken branch (one fetch
	// redirect per cycle through the BTB). The packet is carved out of
	// the lookahead ring in place.
	n := 1
	for n < s.cfg.FetchWidth && n < s.pendLen {
		prev := s.pendAt(n - 1)
		if prev.IsBranch() && prev.Taken {
			break
		}
		if s.pendAt(n).PC != prev.PC+isa.WordBytes {
			break
		}
		n++
	}

	ires, _, _ := s.hier.Inst(s.pendAt(0).PC, s.cycle)
	deliverAt := s.cycle + 1
	nextFetchAt := s.cycle + 1
	fetchWhy := events.CompFrontend
	if !ires.L1Hit {
		s.col.Count(events.ICacheMisses, 1)
		fetchWhy = events.CompICache
		deliverAt += uint64(ires.Latency + ires.WalkCycles)
		nextFetchAt += uint64(ires.Latency + ires.WalkCycles)
	}

	var bubble uint64
	mispredictIdx := -1
	for i := 0; i < n; i++ {
		rec := s.pendAt(i)
		op := rec.Inst.Op
		cls := op.Class()
		if !cls.IsBranch() {
			continue
		}
		switch cls {
		case isa.ClassCondBr:
			pred, idx := s.predictDir(rec.PC)
			s.trainDir(idx, rec.Taken)
			if pred != rec.Taken {
				mispredictIdx = i
			} else if rec.Taken {
				// Correct direction: target must come from the BTB.
				if tgt, ok := s.btb.lookup(rec.PC); !ok || tgt != rec.NextPC {
					s.col.Count(events.BTBMisses, 1)
					bubble += uint64(s.cfg.BrPenalty)
				}
				s.btb.insert(rec.PC, rec.NextPC)
			}
		case isa.ClassUncondBr:
			if op == isa.OpBsr {
				s.ras.Push(rec.PC + isa.WordBytes)
			}
			if tgt, ok := s.btb.lookup(rec.PC); !ok || tgt != rec.NextPC {
				s.col.Count(events.BTBMisses, 1)
				bubble += uint64(s.cfg.BrPenalty)
			}
			s.btb.insert(rec.PC, rec.NextPC)
		case isa.ClassJump:
			predicted := false
			if op == isa.OpRet {
				if top, ok := s.ras.Pop(); ok && top == rec.NextPC {
					predicted = true
				} else if tgt, ok := s.btb.lookup(rec.PC); ok && tgt == rec.NextPC {
					// sim-outorder falls back to the BTB for returns.
					predicted = true
				}
			} else {
				if op == isa.OpJsr {
					s.ras.Push(rec.PC + isa.WordBytes)
				}
				if tgt, ok := s.btb.lookup(rec.PC); ok && tgt == rec.NextPC {
					predicted = true
				}
			}
			s.btb.insert(rec.PC, rec.NextPC)
			if !predicted {
				mispredictIdx = i
			}
		}
		if mispredictIdx >= 0 {
			break
		}
	}

	allocated := 0
	for i := 0; i < n; i++ {
		rec := s.pendAt(i)
		e := s.alloc(rec)
		e.availAt = deliverAt
		e.fetchMiss = !ires.L1Hit
		allocated++
		if i == mispredictIdx {
			// Fetch stops at the mispredicted branch; the rest of the
			// packet stays pending and refetches after recovery.
			e.mispredicted = true
			s.waitBranch = e.inum
			s.col.Count(events.BrMispredicts, 1)
			break
		}
	}
	s.pendHead += allocated
	if s.pendHead >= len(s.pend) {
		s.pendHead -= len(s.pend)
	}
	s.pendLen -= allocated
	nextFetchAt += bubble
	if bubble > 0 && fetchWhy == events.CompFrontend {
		// BTB-miss redirect bubbles are control recovery.
		fetchWhy = events.CompBranch
	}
	s.blockFetch(nextFetchAt, fetchWhy)
}

func (s *sim) alloc(rec *cpu.Record) *entry {
	idx := s.idx(s.count)
	s.count++
	e := &s.rob[idx]
	*e = entry{rec: *rec, inum: s.nextInum, cls: rec.Inst.Op.Class()}
	s.nextInum++
	e.isMem = e.cls.IsMem()
	var srcs [3]isa.RegRef
	for _, src := range srcs[:rec.Inst.SourcesInto(&srcs)] {
		file := 0
		if src.FP {
			file = 1
		}
		if w := s.lastWriter[file][src.Reg]; w != 0 && s.inFlight(w) {
			e.srcs[e.nsrc] = w
			e.nsrc++
		}
	}
	if d, ok := rec.Inst.Dest(); ok {
		e.hasDest = true
		e.destFP = d.FP
		file := 0
		if d.FP {
			file = 1
		}
		s.lastWriter[file][d.Reg] = e.inum
	}
	return e
}
