package ruu

// SampleCapable marks the RUU model as honoring Workload.Sample
// (implements core.SampleCapable; assertion marker, never called).
func (m *Machine) SampleCapable() {}

// StackCapable marks the RUU model's results as carrying an exact
// CPI stack (implements core.StackCapable; assertion marker).
func (m *Machine) StackCapable() {}
