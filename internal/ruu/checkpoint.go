package ruu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fingerprint"
	"repro/internal/vm"
)

// Compat fingerprints the warm-relevant configuration. The RUU model
// warms caches only (the gshare predictor's index couples to the
// speculative global history, so it is left to warmup windows), so
// the fingerprint covers the hierarchy and the mapping policy.
func (m *Machine) Compat() string {
	return checkpoint.Hash([]byte(fingerprint.Of(struct {
		Hier   cache.HierarchyConfig
		Mapper string
	}{m.cfg.Hier, m.cfg.NewMapper().Name()})))
}

// warmer returns the functional-warming hook: caches only, per-line
// on the I-side, exactly as Run's sampling-skip path warms.
func warmer(hier *cache.Hierarchy) func(cpu.Record) {
	warmLine := uint64(1) << 63
	return func(rec cpu.Record) {
		if line := rec.PC &^ 63; line != warmLine {
			hier.WarmInst(rec.PC)
			warmLine = line
		}
		cls := rec.Inst.Op.Class()
		if cls.IsMem() {
			hier.WarmData(rec.EA, cls.IsStore())
		}
	}
}

// RecordCheckpoints implements core.CheckpointRecorder: a functional
// pass that warms the hierarchy exactly as Run's skip path does, with
// a snapshot at each requested stream position.
func (m *Machine) RecordCheckpoints(w core.Workload, positions []uint64) ([]*checkpoint.State, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("ruu: no checkpoint positions requested")
	}
	for i := 1; i < len(positions); i++ {
		if positions[i] <= positions[i-1] {
			return nil, fmt.Errorf("ruu: checkpoint positions not strictly ascending at %d", i)
		}
	}
	if w.NewSource != nil || w.Prog == nil {
		return nil, fmt.Errorf("ruu: checkpoints require a program workload, not a trace source")
	}
	c := cpu.New(w.Prog)
	cpu.Skip(c, w.FastForward)
	hier := cache.NewHierarchy(m.cfg.Hier, m.cfg.NewMapper(), m.memory())
	warm := warmer(hier)
	compat := m.Compat()

	out := make([]*checkpoint.State, 0, len(positions))
	var consumed uint64
	for _, pos := range positions {
		for consumed < pos {
			rec, ok := c.Next()
			if !ok {
				return nil, fmt.Errorf("ruu: %s: stream ended at %d instructions, checkpoint wanted %d",
					w.Name, consumed, pos)
			}
			warm(rec)
			consumed++
		}
		cs, err := c.Export()
		if err != nil {
			return nil, fmt.Errorf("ruu: %s: %w", w.Name, err)
		}
		hs, err := hier.ExportWarm()
		if err != nil {
			return nil, fmt.Errorf("ruu: %s: %w", w.Name, err)
		}
		out = append(out, &checkpoint.State{
			Model:    checkpoint.ModelRUU,
			Machine:  m.cfg.MachineName,
			Compat:   compat,
			Workload: w.Name,
			Position: pos,
			CPU:      cs,
			Pages:    c.Mem.ExportPages(),
			Hier:     hs,
		})
	}
	return out, nil
}

// restoreSim builds a sim resuming from a checkpoint.
func (m *Machine) restoreSim(w core.Workload) (*sim, error) {
	st := w.Checkpoint
	if err := st.CompatibleWith(checkpoint.ModelRUU, m.Compat()); err != nil {
		return nil, err
	}
	if st.Workload != w.Name {
		return nil, fmt.Errorf("ruu: checkpoint recorded workload %q, restoring %q", st.Workload, w.Name)
	}
	mem := vm.NewMemory()
	mem.ImportPages(st.Pages)
	c := cpu.Restore(w.Prog, mem, st.CPU)
	var src cpu.Source = c
	if w.MaxInstructions > 0 {
		src = &cpu.Limited{Src: c, Max: w.MaxInstructions}
	}
	cur := core.NewSampleCursor(w.Sample)
	s := newSim(m.cfg, m.memory(), cur.Wrap(src))
	s.cur = cur
	if err := s.hier.ImportWarm(st.Hier); err != nil {
		return nil, fmt.Errorf("ruu: restore: %w", err)
	}
	return s, nil
}
