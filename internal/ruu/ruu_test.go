package ruu

import (
	"testing"

	"repro/internal/alpha"
	"repro/internal/core"
	"repro/internal/microbench"
)

func run(t *testing.T, m core.Machine, name string) core.RunResult {
	t.Helper()
	w, ok := microbench.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	res, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBasicExecution(t *testing.T) {
	m := New(DefaultConfig())
	res := run(t, m, "E-I")
	if res.IPC() < 3.0 {
		t.Errorf("E-I IPC = %.2f, want near 4", res.IPC())
	}
	res = run(t, m, "E-D1")
	if res.IPC() < 0.8 || res.IPC() > 1.3 {
		t.Errorf("E-D1 IPC = %.2f, want ~1", res.IPC())
	}
}

func TestDeterminism(t *testing.T) {
	m := New(DefaultConfig())
	a := run(t, m, "C-Ca")
	b := run(t, m, "C-Ca")
	if a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

// The central claim of the paper: the abstract RUU machine
// outperforms the validated detailed model on control-heavy code
// because it lacks the front-end constraints (line predictor,
// deep pipeline, jmp flushes).
func TestOptimisticVersusAlpha(t *testing.T) {
	ro := New(DefaultConfig())
	al := alpha.New(alpha.DefaultConfig())
	faster := 0
	for _, name := range []string{"C-Ca", "C-Cb", "C-S1", "C-S2", "C-S3", "C-R"} {
		rr := run(t, ro, name)
		ar := run(t, al, name)
		if rr.IPC() > ar.IPC() {
			faster++
		}
		t.Logf("%s: ruu %.2f vs alpha %.2f", name, rr.IPC(), ar.IPC())
	}
	if faster < 4 {
		t.Errorf("sim-outorder faster on only %d/6 control benchmarks", faster)
	}
}

func TestEightWideFasterThanFourWide(t *testing.T) {
	four := New(DefaultConfig())
	eight := New(EightWide())
	f := run(t, four, "E-I")
	e := run(t, eight, "E-I")
	if e.IPC() <= f.IPC() {
		t.Errorf("8-way IPC %.2f not above 4-way %.2f", e.IPC(), f.IPC())
	}
	if e.IPC() < 5.5 {
		t.Errorf("8-way IPC %.2f; expected well above 4-wide limits", e.IPC())
	}
}

func TestBTBCapturesSwitchTargets(t *testing.T) {
	// sim-outorder's BTB predicts repeated indirect-jump targets,
	// so C-S2/C-S3 should beat the alpha model's line predictor
	// (Table 2: 1.33/1.64 versus 0.85/0.95 on the native machine).
	ro := New(DefaultConfig())
	al := alpha.New(alpha.DefaultConfig())
	rr := run(t, ro, "C-S3")
	ar := run(t, al, "C-S3")
	if rr.IPC() <= ar.IPC() {
		t.Errorf("C-S3: ruu %.2f not above alpha %.2f", rr.IPC(), ar.IPC())
	}
}

func TestMemoryBoundSimilar(t *testing.T) {
	// On pure memory latency (M-M) both machines are DRAM-bound; the
	// RUU model should not be wildly faster (Table 2: -0.3%).
	ro := New(DefaultConfig())
	al := alpha.New(alpha.DefaultConfig())
	rr := run(t, ro, "M-M")
	ar := run(t, al, "M-M")
	ratio := rr.IPC() / ar.IPC()
	if ratio > 2.0 || ratio < 0.5 {
		t.Errorf("M-M ratio ruu/alpha = %.2f; both should be memory-bound", ratio)
	}
}

func TestCountersPresent(t *testing.T) {
	m := New(DefaultConfig())
	res := run(t, m, "C-S1")
	if res.Counter("br_mispredicts")+res.Counter("btb_misses") == 0 {
		t.Error("C-S1 produced no branch/BTB events")
	}
}

func TestRenameRegisterGate(t *testing.T) {
	// With a tiny rename pool, dispatch stalls and IPC collapses on
	// wide independent code; a large pool restores it.
	w, _ := microbench.ByName("E-I")
	small := DefaultConfig()
	small.RenameRegs = 4
	big := DefaultConfig()
	big.RenameRegs = 80
	sr, err := New(small).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	br, err := New(big).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if sr.IPC() >= br.IPC() {
		t.Errorf("rename gate inert: small-pool IPC %.2f >= big-pool %.2f", sr.IPC(), br.IPC())
	}
}

func TestConfigCheck(t *testing.T) {
	if err := DefaultConfig().Check(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := EightWide().Check(); err != nil {
		t.Fatalf("8-wide config invalid: %v", err)
	}
	cfg := DefaultConfig()
	cfg.RUUSize = 1
	if err := cfg.Check(); err == nil {
		t.Error("tiny RUU passed Check")
	}
	defer func() {
		if recover() == nil {
			t.Error("New accepted a bad config")
		}
	}()
	New(cfg)
}
