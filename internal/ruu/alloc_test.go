package ruu

import (
	"testing"

	"repro/internal/microbench"
)

// TestRetireSteadyStateAllocFree is the RUU-model twin of the pin in
// internal/alpha: per-run setup allocations are constant, so the
// difference between a short and a 9x longer run of the same workload
// exposes any per-instruction allocation on the dispatch/issue/commit
// path. C-Ca mixes ALU, memory and control work, so the measured path
// includes the RUU scan, the LSQ and the branch recovery machinery.
func TestRetireSteadyStateAllocFree(t *testing.T) {
	m := New(DefaultConfig())
	w, ok := microbench.ByName("C-Ca")
	if !ok {
		t.Fatal("no C-Ca workload")
	}
	measure := func(limit uint64) float64 {
		wl := w
		wl.MaxInstructions = limit
		return testing.AllocsPerRun(5, func() {
			if _, err := m.Run(wl); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(5_000)
	grown := measure(45_000)
	if extra := grown - base; extra > 4 {
		t.Errorf("commit path allocates in steady state: %.0f extra allocs over 40k extra instructions (short run %.0f, long run %.0f)",
			extra, base, grown)
	}
}
