package dram

import "testing"

// Ablation bench: open-page versus closed-page policy on a streaming
// access pattern (DESIGN.md calls out the page policy as a calibrated
// design choice; the open policy should be materially faster here).
func BenchmarkOpenPageStream(b *testing.B) {
	benchPolicy(b, true)
}

func BenchmarkClosedPageStream(b *testing.B) {
	benchPolicy(b, false)
}

func benchPolicy(b *testing.B, open bool) {
	cfg := DS10LConfig()
	cfg.OpenPage = open
	d := New(cfg)
	now := uint64(0)
	var total int
	for i := 0; i < b.N; i++ {
		lat := d.Access(uint64(i%4096)*64, false, now)
		total += lat
		now += uint64(lat)
	}
	if b.N > 0 {
		b.ReportMetric(float64(total)/float64(b.N), "cycles/access")
	}
}

func BenchmarkRandomAccess(b *testing.B) {
	d := New(DS10LConfig())
	now := uint64(0)
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		lat := d.Access(x%(1<<28), false, now)
		now += uint64(lat)
	}
}
