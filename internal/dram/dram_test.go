package dram

import (
	"testing"
	"testing/quick"
)

func TestOpenPageHitFasterThanMiss(t *testing.T) {
	d := New(DS10LConfig())
	cfg := d.Config()
	first := d.Access(0, false, 1000)
	// Same row, bank now idle again far in the future.
	hit := d.Access(64, false, 1_000_000)
	// Different row, same bank (stride = RowBytes*Banks).
	miss := d.Access(uint64(cfg.RowBytes*cfg.Banks), false, 2_000_000)
	if !(hit < first) {
		t.Errorf("page hit %d not faster than cold access %d", hit, first)
	}
	if !(miss > hit) {
		t.Errorf("page miss %d not slower than hit %d", miss, hit)
	}
	wantHit := cfg.ControllerCycles + (cfg.CASCycles+cfg.TransferCycles)*cfg.ClockRatio
	if hit != wantHit {
		t.Errorf("page hit latency = %d, want %d", hit, wantHit)
	}
	wantMiss := cfg.ControllerCycles + (cfg.PrechargeCycles+cfg.RASCycles+cfg.CASCycles+cfg.TransferCycles)*cfg.ClockRatio
	if miss != wantMiss {
		t.Errorf("page miss latency = %d, want %d", miss, wantMiss)
	}
}

func TestClosedPagePolicyConstantLatency(t *testing.T) {
	cfg := DS10LConfig()
	cfg.OpenPage = false
	d := New(cfg)
	a := d.Access(0, false, 1000)
	b := d.Access(64, false, 1_000_000) // same row: no benefit under closed page
	if a != b {
		t.Errorf("closed-page latencies differ: %d vs %d", a, b)
	}
	if d.Stats.PageHits != 0 {
		t.Errorf("closed-page recorded %d page hits", d.Stats.PageHits)
	}
}

func TestBankConflictQueues(t *testing.T) {
	d := New(DS10LConfig())
	cfg := d.Config()
	// Two back-to-back accesses to different rows of the same bank at
	// the same instant: the second waits for the first.
	sameBankStride := uint64(cfg.RowBytes * cfg.Banks)
	a := d.Access(0, false, 100)
	b := d.Access(sameBankStride, false, 100)
	if b <= a {
		t.Errorf("conflicting access %d not delayed past %d", b, a)
	}
	if d.Stats.BankWaits != 1 {
		t.Errorf("BankWaits = %d, want 1", d.Stats.BankWaits)
	}
}

func TestDifferentBanksDoNotConflict(t *testing.T) {
	d := New(DS10LConfig())
	cfg := d.Config()
	a := d.Access(0, false, 100)
	b := d.Access(uint64(cfg.RowBytes), false, 100) // next row -> next bank
	if b != a {
		t.Errorf("independent banks interfered: %d vs %d", a, b)
	}
	if d.Stats.BankWaits != 0 {
		t.Errorf("BankWaits = %d, want 0", d.Stats.BankWaits)
	}
}

func TestStreamingMostlyPageHits(t *testing.T) {
	d := New(DS10LConfig())
	now := uint64(0)
	for i := 0; i < 256; i++ {
		lat := d.Access(uint64(i*64), false, now)
		now += uint64(lat) + 10
	}
	if d.Stats.PageHits < d.Stats.Accesses*3/4 {
		t.Errorf("streaming page hits = %d of %d", d.Stats.PageHits, d.Stats.Accesses)
	}
}

func TestMinLatency(t *testing.T) {
	d := New(DS10LConfig())
	d.Access(0, false, 0) // open the row
	got := d.Access(0, false, 1_000_000)
	if got != d.MinLatency() {
		t.Errorf("best-case access = %d, MinLatency = %d", got, d.MinLatency())
	}
}

func TestReset(t *testing.T) {
	d := New(DS10LConfig())
	d.Access(0, false, 0)
	d.Reset()
	if d.Stats.Accesses != 0 {
		t.Error("Reset kept stats")
	}
	// After reset the row is closed again: empty-page latency.
	lat := d.Access(0, false, 1_000_000)
	cfg := d.Config()
	want := cfg.ControllerCycles + (cfg.RASCycles+cfg.CASCycles+cfg.TransferCycles)*cfg.ClockRatio
	if lat != want {
		t.Errorf("post-reset latency = %d, want %d", lat, want)
	}
}

// Property: latency is always at least the page-hit minimum and the
// event counters partition all accesses.
func TestQuickLatencyBounds(t *testing.T) {
	d := New(DS10LConfig())
	now := uint64(0)
	f := func(addr uint64, gap uint16) bool {
		now += uint64(gap)
		lat := d.Access(addr%(1<<28), false, now)
		if lat < d.MinLatency() {
			return false
		}
		return d.Stats.PageHits+d.Stats.PageMisses+d.Stats.PageEmpty == d.Stats.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
