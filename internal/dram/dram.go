// Package dram models SDRAM access timing in the style of the
// simulator of Cuppu et al. that sim-alpha used: banked DRAM with
// row-activation (RAS), column-access (CAS) and precharge timing, an
// open-page or closed-page controller policy, a clock ratio between
// the CPU and the memory array, and memory-controller overhead.
//
// Section 4.2 of the paper calibrates exactly these parameters
// against the native machine (settling on an open-page policy with
// 2-cycle RAS, 4-cycle CAS, 2-cycle precharge and 2 cycles of
// controller latency); the MemoryCalibration experiment in
// internal/validate reruns that sweep.
package dram

import "repro/internal/mem"

// Config describes one SDRAM subsystem. All latencies are in DRAM
// cycles except ControllerCycles, which is in CPU cycles (it is board
// logic clocked with the processor interface).
type Config struct {
	Banks            int  // independent banks (power of two)
	RowBytes         int  // bytes per row ("DRAM page") per bank
	RASCycles        int  // row activate
	CASCycles        int  // column access
	PrechargeCycles  int  // row precharge
	TransferCycles   int  // cycles to stream one cache block
	ControllerCycles int  // CPU-cycle overhead, total both ways
	ClockRatio       int  // CPU cycles per DRAM cycle
	OpenPage         bool // keep rows open between accesses
	// PipelinedTransfer models a tuned controller that overlaps the
	// data transfer of one access with the activation of the next in
	// the same bank. Single dependent accesses see no latency change;
	// concurrent misses see roughly twice the sustained bandwidth.
	// The DS-10L's C/D-chip controller behaves this way; simulators
	// that charge the bank for the whole transfer do not.
	PipelinedTransfer bool
}

// DS10LConfig returns the calibrated configuration from the paper:
// open page, RAS 2, CAS 4, precharge 2, 2 cycles of controller
// latency, with the memory array at roughly one sixth of the
// processor clock (466 MHz core, 75 MHz memory bus).
func DS10LConfig() Config {
	return Config{
		Banks:            8,
		RowBytes:         4096,
		RASCycles:        2,
		CASCycles:        4,
		PrechargeCycles:  2,
		TransferCycles:   4,
		ControllerCycles: 2,
		ClockRatio:       6,
		OpenPage:         true,
	}
}

// Stats counts DRAM events for reporting and tests.
type Stats struct {
	Accesses   uint64
	PageHits   uint64 // open-page hit: CAS only
	PageMisses uint64 // wrong row open: precharge + RAS + CAS
	PageEmpty  uint64 // bank closed: RAS + CAS
	BankWaits  uint64 // access stalled behind a busy bank
}

// DRAM is one SDRAM subsystem with per-bank open-row state. The zero
// value is unusable; use New.
type DRAM struct {
	cfg     Config
	openRow []int64  // open row per bank, -1 when closed
	busyAt  []uint64 // CPU cycle at which each bank frees
	Stats   Stats
}

// New returns a DRAM with all banks closed.
func New(cfg Config) *DRAM {
	d := &DRAM{cfg: cfg, openRow: make([]int64, cfg.Banks), busyAt: make([]uint64, cfg.Banks)}
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	return d
}

// Config returns the configuration the DRAM was built with.
func (d *DRAM) Config() Config { return d.cfg }

func (d *DRAM) locate(paddr uint64) (bank int, row int64) {
	r := paddr / uint64(d.cfg.RowBytes)
	bank = int(r % uint64(d.cfg.Banks))
	row = int64(r / uint64(d.cfg.Banks))
	return bank, row
}

// Access performs one block read or write beginning at CPU cycle now
// and returns its total latency in CPU cycles, including controller
// overhead, any wait for a busy bank, and the block transfer. The
// flat model prices reads and writes identically, so the write flag
// only exists to satisfy the backend interface (the DDR controller
// uses it for write-recovery timing).
func (d *DRAM) Access(paddr uint64, write bool, now uint64) int {
	_ = write
	d.Stats.Accesses++
	bank, row := d.locate(paddr)

	lat := d.cfg.ControllerCycles // CPU cycles
	start := now + uint64(d.cfg.ControllerCycles/2)
	if d.busyAt[bank] > start {
		d.Stats.BankWaits++
		lat += int(d.busyAt[bank] - start)
		start = d.busyAt[bank]
	}

	var dramCycles int
	switch {
	case !d.cfg.OpenPage:
		// Closed-page: the row was precharged right after the last
		// access, so every access pays activate + column.
		dramCycles = d.cfg.RASCycles + d.cfg.CASCycles
		d.Stats.PageEmpty++
	case d.openRow[bank] == row:
		dramCycles = d.cfg.CASCycles
		d.Stats.PageHits++
	case d.openRow[bank] < 0:
		dramCycles = d.cfg.RASCycles + d.cfg.CASCycles
		d.Stats.PageEmpty++
	default:
		dramCycles = d.cfg.PrechargeCycles + d.cfg.RASCycles + d.cfg.CASCycles
		d.Stats.PageMisses++
	}
	dramCycles += d.cfg.TransferCycles

	if d.cfg.OpenPage {
		d.openRow[bank] = row
	} else {
		d.openRow[bank] = -1
	}

	lat += dramCycles * d.cfg.ClockRatio
	busy := dramCycles
	if d.cfg.PipelinedTransfer {
		busy -= d.cfg.TransferCycles
		if busy < 1 {
			busy = 1
		}
	}
	d.busyAt[bank] = start + uint64(busy*d.cfg.ClockRatio)
	return lat
}

// MinLatency returns the best-case (page hit, idle bank) access
// latency in CPU cycles, used by tests and documentation tables.
func (d *DRAM) MinLatency() int {
	c := d.cfg.CASCycles
	if !d.cfg.OpenPage {
		c = d.cfg.RASCycles + d.cfg.CASCycles
	}
	return d.cfg.ControllerCycles + (c+d.cfg.TransferCycles)*d.cfg.ClockRatio
}

// MemStats maps the flat model's page accounting onto the
// backend-neutral counter set: SDRAM pages are DDR rows, and a bank
// wait is a bank conflict. The flat model has no request queue, so
// the queue fields stay zero.
func (d *DRAM) MemStats() mem.Stats {
	return mem.Stats{
		Accesses:      d.Stats.Accesses,
		RowHits:       d.Stats.PageHits,
		RowMisses:     d.Stats.PageMisses,
		RowEmpty:      d.Stats.PageEmpty,
		BankConflicts: d.Stats.BankWaits,
	}
}

// Reset closes all banks and clears statistics.
func (d *DRAM) Reset() {
	for i := range d.openRow {
		d.openRow[i] = -1
		d.busyAt[i] = 0
	}
	d.Stats = Stats{}
}
