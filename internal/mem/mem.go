// Package mem defines the contract between the cache hierarchy and
// whatever sits below it: a main-memory timing backend. It is a leaf
// package — no repository imports — so both the flat SDRAM model
// (internal/dram) and the cycle-accurate DDR controller (internal/ddr)
// can implement the interface without creating an import cycle with
// the hierarchy that drives them, and internal tests of the cache
// package can keep constructing concrete backends directly.
package mem

// Stats is the backend-neutral counter set every memory backend
// reports. The flat SDRAM model maps its page-hit accounting onto the
// row fields; the DDR controller fills every field. Queue fields stay
// zero on backends without a request queue.
type Stats struct {
	Accesses uint64
	// RowHits/RowMisses/RowEmpty classify each access against the
	// bank's row buffer: open-row hit (column access only), conflict
	// (wrong row open: precharge + activate + column), and empty (bank
	// closed: activate + column).
	RowHits   uint64
	RowMisses uint64
	RowEmpty  uint64
	// BankConflicts counts accesses that had to wait behind earlier
	// work on the same bank.
	BankConflicts uint64
	// QueueWaits totals the CPU cycles accesses spent waiting for a
	// slot in a bounded per-bank request queue; QueueOccupancy
	// accumulates the queue depth observed at each arrival (divide by
	// Accesses for the mean).
	QueueWaits     uint64
	QueueOccupancy uint64
}

// Memory is one main-memory timing backend under the L2: given the
// physical address of a block access and the CPU cycle it reaches the
// controller, it returns the total load-to-use latency in CPU cycles
// and advances its internal bank/bus state. Implementations must be
// deterministic: the same call sequence always produces the same
// latencies and statistics, at any host parallelism.
type Memory interface {
	// Access performs one block read (write=false) or write-allocate
	// fill (write=true) beginning at CPU cycle now and returns its
	// total latency in CPU cycles.
	Access(paddr uint64, write bool, now uint64) int
	// MinLatency returns the best-case (row hit, idle bank) access
	// latency in CPU cycles, used by tests and documentation tables.
	MinLatency() int
	// MemStats returns the backend's accumulated counters.
	MemStats() Stats
	// Reset returns the backend to its post-construction state: banks
	// closed, queues empty, statistics cleared.
	Reset()
}
