// Package metrics is a dependency-free counter/gauge/histogram
// registry for the simulation service. It exposes an expvar-style
// text format (one "name value" line per series, Prometheus-shaped
// histogram lines) and a JSON rendering of the same data, so the
// daemon's /metrics endpoint can feed both a human's curl and a
// scraper without importing anything beyond the standard library.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are upper bounds in seconds suited to request
// latencies that span a cache hit (~µs) to a full experiment (~min).
var DefLatencyBuckets = []float64{
	.0001, .0005, .001, .005, .01, .05, .1, .5, 1, 5, 10, 30, 60, 120,
}

// Histogram counts observations into fixed upper-bound buckets, plus
// a +Inf overflow, tracking total count and sum.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds
	counts []uint64  // len(bounds)+1; last is +Inf
	count  uint64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i]++
	h.count++
	h.sum += x
	h.mu.Unlock()
}

// HistogramSnapshot is a consistent copy of a histogram's state.
// Buckets holds cumulative counts per upper bound; the implicit +Inf
// bucket equals Count.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets"`
	bounds  []float64
	cumul   []uint64
}

// Snapshot returns a consistent copy.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Buckets: make(map[string]uint64, len(h.bounds)+1),
		bounds:  h.bounds,
		cumul:   make([]uint64, len(h.bounds)+1),
	}
	var running uint64
	for i, c := range h.counts {
		running += c
		s.cumul[i] = running
		s.Buckets[bucketLabel(h.bounds, i)] = running
	}
	return s
}

func bucketLabel(bounds []float64, i int) string {
	if i >= len(bounds) {
		return "+Inf"
	}
	return strconv.FormatFloat(bounds[i], 'g', -1, 64)
}

// Registry owns named series. Lookups are get-or-create, so callers
// can address a series by name at the use site without a shared
// declaration; a name is bound to its first-seen kind.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the bounds on first use (later bounds are ignored; the first
// registration wins). Non-finite and unsorted bounds are sanitized.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := make([]float64, 0, len(bounds))
		for _, b := range bounds {
			if !math.IsInf(b, 0) && !math.IsNaN(b) {
				bs = append(bs, b)
			}
		}
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// WriteText renders every series in name order, one line per value:
//
//	cache_hits_total 42
//	request_seconds_count 17
//	request_seconds_sum 1.23
//	request_seconds_bucket{le="0.005"} 9
func (r *Registry) WriteText(w io.Writer) error {
	counters, gauges, hists := r.snapshot()
	names := make([]string, 0, len(counters)+len(gauges)+len(hists))
	for n := range counters {
		names = append(names, n)
	}
	for n := range gauges {
		names = append(names, n)
	}
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		switch {
		case counters[n] != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", n, counters[n].Value()); err != nil {
				return err
			}
		case gauges[n] != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", n, gauges[n].Value()); err != nil {
				return err
			}
		default:
			s := hists[n].Snapshot()
			if _, err := fmt.Fprintf(w, "%s_count %d\n%s_sum %s\n",
				n, s.Count, n, strconv.FormatFloat(s.Sum, 'g', -1, 64)); err != nil {
				return err
			}
			for i := range s.cumul {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
					n, bucketLabel(s.bounds, i), s.cumul[i]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// MarshalJSON renders the registry as one flat object: counters and
// gauges as numbers, histograms as {count, sum, buckets} objects.
func (r *Registry) MarshalJSON() ([]byte, error) {
	counters, gauges, hists := r.snapshot()
	out := make(map[string]any, len(counters)+len(gauges)+len(hists))
	for n, c := range counters {
		out[n] = c.Value()
	}
	for n, g := range gauges {
		out[n] = g.Value()
	}
	for n, h := range hists {
		out[n] = h.Snapshot()
	}
	return json.Marshal(out)
}

func (r *Registry) snapshot() (map[string]*Counter, map[string]*Gauge, map[string]*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		cs[n] = c
	}
	gs := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gs[n] = g
	}
	hs := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hs[n] = h
	}
	return cs, gs, hs
}

// Handler serves the registry: text by default, JSON when the
// request asks for it (?format=json or an Accept header preferring
// application/json).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if wantJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			b, err := r.MarshalJSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Write(b)
			w.Write([]byte("\n"))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}

func wantJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}
