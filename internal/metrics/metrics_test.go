package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same counter name returned distinct instances")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same gauge name returned distinct instances")
	}
	if r.Histogram("h", []float64{1}) != r.Histogram("h", []float64{2}) {
		t.Fatal("same histogram name returned distinct instances")
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("reqs").Inc()
				r.Gauge("busy").Add(1)
				r.Gauge("busy").Add(-1)
				r.Histogram("lat", DefLatencyBuckets).Observe(0.002)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("reqs").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("busy").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("lat", nil).Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.01, 0.1, 1})
	for _, x := range []float64{0.001, 0.05, 0.05, 0.5, 7} {
		h.Observe(x)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	// Cumulative: ≤0.01 → 1, ≤0.1 → 3, ≤1 → 4, +Inf → 5.
	for label, want := range map[string]uint64{"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5} {
		if got := s.Buckets[label]; got != want {
			t.Errorf("bucket %q = %d, want %d", label, got, want)
		}
	}
	if s.Sum < 7.6 || s.Sum > 7.7 {
		t.Errorf("sum = %g, want ≈7.601", s.Sum)
	}
}

func TestTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache_hits_total").Add(3)
	r.Gauge("pool_busy").Set(2)
	r.Histogram("request_seconds", []float64{0.5}).Observe(0.1)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"cache_hits_total 3\n",
		"pool_busy 2\n",
		"request_seconds_count 1\n",
		`request_seconds_bucket{le="0.5"} 1` + "\n",
		`request_seconds_bucket{le="+Inf"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("cells_simulated_total").Add(21)
	r.Gauge("pool_capacity").Set(8)
	r.Histogram("request_seconds", DefLatencyBuckets).Observe(0.25)

	b, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("invalid JSON %s: %v", b, err)
	}
	if string(m["cells_simulated_total"]) != "21" {
		t.Errorf("cells_simulated_total = %s, want 21", m["cells_simulated_total"])
	}
	var h struct {
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(m["request_seconds"], &h); err != nil || h.Count != 1 {
		t.Errorf("request_seconds = %s (err %v), want count 1", m["request_seconds"], err)
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Inc()
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default Content-Type = %q, want text/plain", ct)
	}
	if !strings.Contains(rec.Body.String(), "requests_total 1") {
		t.Errorf("text body = %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("json body invalid: %v", err)
	}
}
