// Package interval implements an analytical interval-model estimator
// in the tradition of Karkhanis & Smith and Eyerman et al.'s
// mechanistic interval models: cycles are *derived* from measured
// event counts rather than simulated cycle by cycle. The machine
// makes one functional pass over the dynamic stream, counting the
// miss events that end intervals of smooth issue (branch
// mispredictions, I-cache misses, long data misses), and then prices
// each event class with a fixed penalty:
//
//	cycles = ceil(N / width) + sum_e count(e) * penalty(e) / overlap(e)
//
// This is the cheapest fidelity tier in the registry (analytical): it
// cannot see rename pressure, replay traps, or issue-queue structure
// at all, and it assumes miss events never overlap with useful work
// beyond a fixed per-class factor. That blindness is the point — the
// stability experiment (internal/validate) asks where conclusions
// drawn on this tier diverge from the detailed 21264 model, i.e.
// where the interval abstraction flips a speedup ranking.
package interval

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/predict"
	"repro/internal/vm"
)

// Config describes the interval estimator. The cache hierarchy and
// predictor are simulated functionally (hits and misses are real, as
// the interval model requires measured event counts); only the
// translation of events into cycles is analytical.
type Config struct {
	MachineName string

	// Width is the sustained issue width of the balanced pipeline:
	// the base term charges one cycle per Width instructions.
	Width int
	// BranchPenalty is the full pipeline-refill cost charged per
	// mispredicted branch (interval models charge the front-end
	// refill, not just the flush).
	BranchPenalty int
	// L2Overlap divides the penalty of L1D misses that hit in the L2:
	// an out-of-order window hides part of a short miss under
	// independent work. 1 means fully exposed.
	L2Overlap int
	// MemOverlap divides the penalty of L2 misses (DRAM accesses);
	// long misses overlap mostly with each other (MLP), which a
	// single divisor approximates.
	MemOverlap int
	// BimodalBits sizes the 2-bit-counter direction predictor used to
	// measure the misprediction count.
	BimodalBits int

	Hier      cache.HierarchyConfig
	DRAM      dram.Config
	NewMapper func() vm.Mapper
}

// DefaultConfig returns the estimator parameterized for the DS-10L
// target: 4-wide, 7-cycle refill (the 21264's minimum mispredict
// cost), DS-10L caches without the victim buffer (the analytical
// model prices only clean hit/miss classes).
func DefaultConfig() Config {
	hier := cache.DS10L()
	hier.VictimEntries = 0
	return Config{
		MachineName:   "sim-interval",
		Width:         4,
		BranchPenalty: 7,
		L2Overlap:     2,
		MemOverlap:    2,
		BimodalBits:   11,
		Hier:          hier,
		DRAM:          dram.DS10LConfig(),
		NewMapper:     func() vm.Mapper { return &vm.SeqMapper{} },
	}
}

// Check validates the configuration.
func (c Config) Check() error {
	if c.Width < 1 {
		return fmt.Errorf("interval: Width %d < 1", c.Width)
	}
	if c.BranchPenalty < 0 {
		return fmt.Errorf("interval: negative BranchPenalty %d", c.BranchPenalty)
	}
	if c.L2Overlap < 1 || c.MemOverlap < 1 {
		return fmt.Errorf("interval: overlap divisors must be >= 1 (L2 %d, Mem %d)",
			c.L2Overlap, c.MemOverlap)
	}
	if c.BimodalBits < 1 || c.BimodalBits > 24 {
		return fmt.Errorf("interval: BimodalBits %d out of range [1,24]", c.BimodalBits)
	}
	return nil
}

// Machine implements core.Machine.
type Machine struct {
	cfg Config
	// newMem, when set, builds the main-memory backend instead of the
	// flat SDRAM model from cfg.DRAM (see alpha.Machine for why this
	// lives outside Config: pinned fingerprints must not change).
	newMem func() cache.Memory
}

// New returns a machine for the configuration.
func New(cfg Config) *Machine { return &Machine{cfg: cfg} }

// NewWithMemory returns a machine whose hierarchy sits on the memory
// backend the factory builds instead of the flat SDRAM from cfg.DRAM.
func NewWithMemory(cfg Config, newMem func() cache.Memory) *Machine {
	m := New(cfg)
	m.newMem = newMem
	return m
}

// memory builds the machine's main-memory backend.
func (m *Machine) memory() cache.Memory {
	if m.newMem != nil {
		return m.newMem()
	}
	return dram.New(m.cfg.DRAM)
}

// Name implements core.Machine.
func (m *Machine) Name() string { return m.cfg.MachineName }

// Run implements core.Machine: one functional pass counting miss
// events, then the closed-form cycle estimate. The hierarchy is
// probed with an estimated current cycle (retired/Width plus the
// penalties accumulated so far) so DRAM bank/bus timing sees a
// plausible clock, but no per-cycle state is simulated.
//
// The estimator does not support sampling (it already costs only a
// functional pass), checkpoint restore, or warm fast-forward; the
// registry advertises these gaps as capability flags.
func (m *Machine) Run(w core.Workload) (core.RunResult, error) {
	if w.Sample != nil {
		return core.RunResult{}, fmt.Errorf("%s: analytical backend does not support sampling (it is already a single functional pass)", m.cfg.MachineName)
	}
	if w.Checkpoint != nil {
		return core.RunResult{}, fmt.Errorf("%s: analytical backend does not support checkpoint restore", m.cfg.MachineName)
	}
	if w.WarmFastForward > 0 {
		return core.RunResult{}, fmt.Errorf("%s: analytical backend does not support warm fast-forward", m.cfg.MachineName)
	}
	if err := w.CheckRestore(); err != nil {
		return core.RunResult{}, err
	}
	if err := m.cfg.Check(); err != nil {
		return core.RunResult{}, err
	}
	hier := cache.NewHierarchy(m.cfg.Hier, m.cfg.NewMapper(), m.memory())
	bimodal := newBimodal(m.cfg.BimodalBits)
	src := w.Source()

	var retired uint64
	// Per-component penalty accumulators, in cycles. Kept separate so
	// the CPI stack attributes each class exactly. dramPen holds the
	// controller-queueing share of memory penalties: cycles the
	// backend reports as request-queue waits are carved out of the
	// cache-miss components and charged to the dram component, so a
	// DDR-backed run's stack shows memory-controller pressure
	// directly. The flat backend reports no queue waits, so dramPen
	// is identically zero there and the stack is unchanged.
	var icPen, dcPen, l2Pen, brPen, dramPen uint64
	var col events.Collector

	// qwDelta reports the backend queue-wait cycles accrued since the
	// previous probe that could have touched the controller.
	var lastQW uint64
	qwDelta := func() uint64 {
		q := hier.Mem.MemStats().QueueWaits
		d := q - lastQW
		lastQW = q
		return d
	}

	lastFetchLine := uint64(1) << 63
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		// The estimated clock handed to the hierarchy: base progress
		// plus everything charged so far. Only DRAM timing reads it.
		now := retired/uint64(m.cfg.Width) + icPen + dcPen + l2Pen + brPen + dramPen

		// Fetch: one I-cache probe per line transition. An I-cache
		// miss ends an interval; the refill is serial with fetch, so
		// the full latency is charged.
		line := rec.PC &^ 63
		if line != lastFetchLine {
			res, _, _ := hier.Inst(rec.PC, now)
			if !res.L1Hit {
				col.Count(events.ICacheMisses, 1)
				pen := uint64(res.Latency + res.WalkCycles)
				// The refill is serial with fetch: queue waits carve
				// out of the same fully exposed penalty.
				if dq := qwDelta(); dq > 0 {
					if dq > pen {
						dq = pen
					}
					dramPen += dq
					pen -= dq
				}
				icPen += pen
			}
			lastFetchLine = line
		}

		switch {
		case rec.Inst.Op.Class().IsLoad():
			res := hier.Data(rec.EA, false, now)
			if !res.L1Hit && !res.VBHit {
				col.Count(events.DCacheMisses, 1)
				pen := uint64(res.Latency + res.WalkCycles)
				if res.L2Hit {
					if p := pen / uint64(m.cfg.L2Overlap); p > 0 {
						dcPen += p
					} else {
						dcPen++ // a counted miss always costs a cycle
					}
				} else {
					col.Count(events.L2Misses, 1)
					// Queue waits overlap like the rest of the long
					// miss, but are attributed to the controller.
					if dq := qwDelta(); dq > 0 {
						if dq > pen {
							dq = pen
						}
						if d := dq / uint64(m.cfg.MemOverlap); d > 0 {
							dramPen += d
						}
						pen -= dq
					}
					if p := pen / uint64(m.cfg.MemOverlap); p > 0 {
						l2Pen += p
					} else {
						l2Pen++
					}
				}
			}
		case rec.Inst.Op.Class().IsStore():
			// Stores update the hierarchy (they shape later miss
			// counts) but are priced as fully buffered: no penalty —
			// resync the queue-wait baseline so a store's controller
			// queueing is not charged to the next load.
			hier.Data(rec.EA, true, now)
			qwDelta()
		case rec.IsBranch():
			taken := predictTaken(bimodal, rec.PC)
			train(bimodal, rec.PC, rec.Taken)
			mispredict := taken != rec.Taken
			if rec.Inst.Op.Class() == isa.ClassJump {
				mispredict = true // no BTB: indirect targets always refill
			}
			if mispredict {
				col.Count(events.BrMispredicts, 1)
				brPen += uint64(m.cfg.BranchPenalty)
			}
		}
		retired++
	}
	if retired == 0 {
		return core.RunResult{}, fmt.Errorf("interval: empty instruction stream")
	}

	// The closed-form estimate: smooth issue plus priced miss events.
	base := (retired + uint64(m.cfg.Width) - 1) / uint64(m.cfg.Width)
	cycles := base + icPen + dcPen + l2Pen + brPen + dramPen

	col.Attribute(events.CompICache, icPen)
	col.Attribute(events.CompDCache, dcPen)
	col.Attribute(events.CompL2, l2Pen)
	col.Attribute(events.CompBranch, brPen)
	col.Attribute(events.CompDRAM, dramPen)
	hier.FoldMemEvents(&col)
	stack := col.Finish(cycles)
	return core.RunResult{
		Machine:      m.cfg.MachineName,
		Workload:     w.Name,
		Instructions: retired,
		Cycles:       cycles,
		Counters:     col.Counters(events.ModelInterval),
		Breakdown:    &stack,
	}, nil
}

func newBimodal(bits int) []predict.SatCounter {
	t := make([]predict.SatCounter, 1<<bits)
	for i := range t {
		t[i] = predict.NewSatCounter(2, 1)
	}
	return t
}

func predictTaken(t []predict.SatCounter, pc uint64) bool {
	return t[int(pc>>2)&(len(t)-1)].Taken()
}

func train(t []predict.SatCounter, pc uint64, taken bool) {
	i := int(pc>>2) & (len(t) - 1)
	if taken {
		t[i].Inc()
	} else {
		t[i].Dec()
	}
}
