package interval

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/microbench"
)

func TestBasicBounds(t *testing.T) {
	m := New(DefaultConfig())
	for _, name := range []string{"E-I", "E-D1", "C-Ca", "M-I"} {
		w, _ := microbench.ByName(name)
		res, err := m.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		if ipc := res.IPC(); ipc <= 0 || ipc > float64(DefaultConfig().Width) {
			t.Errorf("%s: interval IPC %.2f outside (0, Width]", name, ipc)
		}
	}
}

func TestDeterministic(t *testing.T) {
	m := New(DefaultConfig())
	w, _ := microbench.ByName("M-M")
	a, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs differ:\n%+v\n%+v", a, b)
	}
}

func TestBreakdownSumsToCycles(t *testing.T) {
	m := New(DefaultConfig())
	for _, name := range []string{"E-I", "C-Ca", "M-M"} {
		w, _ := microbench.ByName(name)
		res, err := m.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		if res.Breakdown == nil {
			t.Fatalf("%s: no CPI stack", name)
		}
		if got := res.Breakdown.Sum(); got != res.Cycles {
			t.Errorf("%s: stack sums to %d, cycles %d", name, got, res.Cycles)
		}
	}
}

func TestRejectsUnsupportedModes(t *testing.T) {
	m := New(DefaultConfig())
	w, _ := microbench.ByName("E-I")

	sw := w
	sw.Sample = &core.SamplePlan{Period: 1000, Warmup: 100, Measure: 100}
	if _, err := m.Run(sw); err == nil {
		t.Error("sampling accepted; want error")
	}

	ff := w
	ff.WarmFastForward = 100
	if _, err := m.Run(ff); err == nil {
		t.Error("warm fast-forward accepted; want error")
	}
}

func TestCapabilityMarkers(t *testing.T) {
	var m core.Machine = New(DefaultConfig())
	if _, ok := m.(core.StackCapable); !ok {
		t.Error("interval machine should assert core.StackCapable")
	}
	if _, ok := m.(core.SampleCapable); ok {
		t.Error("interval machine must not assert core.SampleCapable")
	}
	if _, ok := m.(core.CheckpointRecorder); ok {
		t.Error("interval machine must not assert core.CheckpointRecorder")
	}
}

func TestConfigCheck(t *testing.T) {
	bad := DefaultConfig()
	bad.Width = 0
	if err := bad.Check(); err == nil {
		t.Error("Width 0 passed Check")
	}
	bad = DefaultConfig()
	bad.L2Overlap = 0
	if err := bad.Check(); err == nil {
		t.Error("L2Overlap 0 passed Check")
	}
	if err := DefaultConfig().Check(); err != nil {
		t.Errorf("default config failed Check: %v", err)
	}
}
