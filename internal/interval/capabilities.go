package interval

// StackCapable marks the analytical estimator's results as carrying a
// CPI stack — the per-class penalty terms sum exactly to the cycle
// estimate (implements core.StackCapable; assertion marker, never
// called).
//
// The estimator deliberately does NOT implement core.SampleCapable or
// core.CheckpointRecorder: it is already a single functional pass, so
// sampling would save nothing, and it keeps no timed state worth
// checkpointing. The registry derives its capability flags from these
// absent assertions.
func (m *Machine) StackCapable() {}
