package repro

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/isa"
)

func TestMachineConstructors(t *testing.T) {
	machines := []Machine{
		SimAlpha(), SimInitial(), SimStripped(), SimOutorder(), NativeDS10L(),
		SimInorder(),
	}
	names := map[string]bool{}
	for _, m := range machines {
		if m.Name() == "" {
			t.Error("machine with empty name")
		}
		if names[m.Name()] {
			t.Errorf("duplicate machine name %s", m.Name())
		}
		names[m.Name()] = true
	}
}

func TestWorkloadLookup(t *testing.T) {
	if len(Microbenchmarks()) != 21 {
		t.Errorf("microbenchmarks = %d, want 21", len(Microbenchmarks()))
	}
	if len(Macrobenchmarks()) != 10 {
		t.Errorf("macrobenchmarks = %d, want 10", len(Macrobenchmarks()))
	}
	if len(CalibrationWorkloads()) != 3 {
		t.Errorf("calibration = %d, want 3", len(CalibrationWorkloads()))
	}
	for _, name := range []string{"C-Ca", "gzip", "stream", "M-M"} {
		if _, ok := WorkloadByName(name); !ok {
			t.Errorf("WorkloadByName(%q) failed", name)
		}
	}
	if _, ok := WorkloadByName("bogus"); ok {
		t.Error("WorkloadByName accepted junk")
	}
}

func TestFeatureToggles(t *testing.T) {
	feats := FeatureNames()
	if len(feats) != 10 {
		t.Fatalf("features = %d, want 10", len(feats))
	}
	for _, f := range feats {
		m := SimAlphaWithout(f)
		if m.Name() == SimAlpha().Name() {
			t.Errorf("feature-removed machine %s shares the baseline name", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown feature did not panic")
		}
	}()
	SimAlphaWithout("nonsense")
}

func TestEndToEndRun(t *testing.T) {
	m := SimAlpha()
	w, _ := WorkloadByName("E-D1")
	res, err := m.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if ipc := res.IPC(); ipc < 0.8 || ipc > 1.3 {
		t.Errorf("E-D1 IPC = %.2f, want ~1", ipc)
	}
}

func TestCustomWorkload(t *testing.T) {
	b := NewProgram("custom")
	b.Label("main")
	b.LoadImm(isa.T0, 100)
	b.Label("loop")
	b.OpI(isa.OpSubq, isa.T0, 1, isa.T0)
	b.Br(isa.OpBne, isa.T0, "loop")
	b.Halt()
	w := NewWorkload("custom", b.MustAssemble())
	res, err := SimAlpha().Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 200 {
		t.Errorf("custom workload ran %d instructions", res.Instructions)
	}
}

func TestErrorMetric(t *testing.T) {
	if e := PctErrorCPI(2, 1); e >= 0 {
		t.Error("slower simulator should be negative")
	}
}

func TestQuickExperimentAPIs(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment regeneration in -short mode")
	}
	opt := Options{Limit: 20_000}
	t2, err := Table2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 21 {
		t.Errorf("table 2 rows = %d", len(t2.Rows))
	}
	// The headline result survives truncation: the validated
	// simulator has far lower error than the unvalidated one.
	if t2.MeanAlphaErr >= t2.MeanInitialErr {
		t.Errorf("validated error %.1f%% not below initial %.1f%%",
			t2.MeanAlphaErr, t2.MeanInitialErr)
	}
	t3, err := Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 10 {
		t.Errorf("table 3 rows = %d", len(t3.Rows))
	}
}

func TestTraceReplayMatchesLiveRun(t *testing.T) {
	w, _ := WorkloadByName("C-S2")
	dir := t.TempDir()
	path := dir + "/t.axpt"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := RecordTrace(f, w)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if n == 0 {
		t.Fatal("empty trace")
	}
	live, err := SimAlpha().Run(w)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := SimAlpha().Run(WorkloadFromTrace("C-S2", path))
	if err != nil {
		t.Fatal(err)
	}
	if live.Cycles != replay.Cycles || live.Instructions != replay.Instructions {
		t.Errorf("trace replay diverged: live %d/%d, replay %d/%d",
			live.Instructions, live.Cycles, replay.Instructions, replay.Cycles)
	}
}

func TestSaveLoadProgram(t *testing.T) {
	w, _ := WorkloadByName("C-Ca")
	var buf bytes.Buffer
	if err := SaveProgram(&buf, w.Prog); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := SimAlpha().Run(w)
	b, _ := SimAlpha().Run(NewWorkload("C-Ca", p))
	if a.Cycles != b.Cycles {
		t.Errorf("object round trip changed timing: %d vs %d", a.Cycles, b.Cycles)
	}
}
