// Package repro is the public API of this repository: a
// reproduction, as a Go library, of Desikan, Burger and Keckler,
// "Measuring Experimental Error in Microprocessor Simulation"
// (ISCA 2001).
//
// The library provides:
//
//   - the machines: the validated 21264 model (sim-alpha), its
//     unvalidated ancestor (sim-initial), the de-featured variant
//     (sim-stripped), the SimpleScalar-style RUU model
//     (sim-outorder), and the simulated reference machine that stands
//     in for the paper's Compaq DS-10L (see DESIGN.md);
//   - the workloads: the paper's 21 microbenchmarks, the STREAM and
//     lmbench calibration kernels, and synthetic stand-ins for the
//     ten SPEC2000 macrobenchmarks;
//   - the experiments: every table and figure of the paper's
//     evaluation, regenerated against the reference machine;
//   - the substrate needed to build new workloads: an assembler for
//     the AXP-lite instruction set.
//
// Quick start:
//
//	m := repro.SimAlpha()
//	w, _ := repro.WorkloadByName("C-Ca")
//	res, err := m.Run(w)
//	fmt.Println(res.IPC())
package repro

import (
	"fmt"
	"io"
	"os"

	"repro/internal/asm"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/macrobench"
	"repro/internal/microbench"
	"repro/internal/model"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/validate"
	"repro/internal/workgen"
)

// Machine is any timing model that can run a Workload; see the
// constructors below.
type Machine = core.Machine

// Workload is one benchmark program.
type Workload = core.Workload

// RunResult is the outcome of one run: instruction and cycle counts
// plus machine-specific event counters.
type RunResult = core.RunResult

// Every constructor below resolves through the backend registry
// (internal/model), the one place that knows machines by name; see
// Backends for the catalogue with fidelity tiers and capabilities.

// SimAlpha returns the validated Alpha 21264 simulator, the paper's
// primary artifact.
func SimAlpha() Machine { return model.MustNew("sim-alpha") }

// SimInitial returns the unvalidated initial simulator: sim-alpha
// plus the catalogued modeling, specification and abstraction bugs of
// Section 3.4.
func SimInitial() Machine { return model.MustNew("sim-initial") }

// SimStripped returns sim-alpha with the seven performance features
// and three clock-rate constraints removed (Section 5.1).
func SimStripped() Machine { return model.MustNew("sim-stripped") }

// SimOutorder returns the SimpleScalar-style RUU simulator.
func SimOutorder() Machine { return model.MustNew("sim-outorder") }

// NativeDS10L returns the reference machine standing in for the
// paper's Compaq DS-10L workstation, measured through the emulated
// DCPI sampling profiler.
func NativeDS10L() Machine { return model.MustNew("native-ds10l") }

// SimInorder returns a single-issue, in-order, blocking-cache model
// (a Mipsy-class simulator), extending the paper's comparison set
// with the simplest credible timing model.
func SimInorder() Machine { return model.MustNew("sim-inorder") }

// SimInterval returns the analytical interval-model estimator: one
// functional pass counting miss events, cycles derived in closed
// form. The cheapest fidelity tier — see the stability experiment for
// where its conclusions diverge from the detailed model's.
func SimInterval() Machine { return model.MustNew("sim-interval") }

// SimAlphaDDR returns sim-alpha with the flat DRAM latency table
// replaced by the cycle-accurate DDR memory subsystem (banked, with
// row-buffer policies and controller scheduling — internal/ddr). The
// memory experiment quantifies what the flat model gets wrong.
func SimAlphaDDR() Machine { return model.MustNew("sim-alpha-ddr") }

// Backend describes one registered timing model: name, description,
// fidelity tier, and discovered capability flags.
type Backend = model.Descriptor

// Backends returns every registered timing model, reference machine
// first, then the simulators in decreasing fidelity order.
func Backends() []Backend { return model.Backends() }

// NewMachine constructs a machine by backend name ("sim-alpha",
// "native-ds10l", ...; the bare model name is accepted, so "interval"
// resolves to "sim-interval"). Unknown names return an error wrapping
// model.ErrUnknownBackend.
func NewMachine(name string) (Machine, error) { return model.New(name) }

// FeatureNames lists the ten 21264 features of Tables 4 and 5:
// addr, eret, luse, pref, spec, stwt, vbuf, maps, slot, trap.
func FeatureNames() []string { return model.AlphaFeatures() }

// SimAlphaTraced returns the validated simulator with a pipeline
// event trace: one line per retired instruction (fetch/map/issue/
// complete/retire cycles), the counterpart of SimpleScalar's ptrace.
func SimAlphaTraced(w io.Writer) Machine {
	cfg := model.DefaultAlphaConfig()
	cfg.PipeTracer = model.AlphaPipeTraceWriter(w)
	return model.NewAlpha(cfg)
}

// SimAlphaWithout returns sim-alpha with one named feature disabled.
// It panics on an unknown feature name; see FeatureNames.
func SimAlphaWithout(feature string) Machine {
	return model.NewAlpha(model.DefaultAlphaConfig().WithoutFeature(feature))
}

// Microbenchmarks returns the paper's 21-benchmark validation suite
// in Table 2 order.
func Microbenchmarks() []Workload { return microbench.Suite() }

// CalibrationWorkloads returns the Section 4.2 memory-calibration
// set: M-M, STREAM and lmbench.
func CalibrationWorkloads() []Workload { return microbench.Calibration() }

// Macrobenchmarks returns the ten SPEC2000 proxies in Table 3 order.
func Macrobenchmarks() []Workload { return macrobench.Suite() }

// WorkloadByName finds a workload across all suites (micro, macro,
// and calibration).
func WorkloadByName(name string) (Workload, bool) {
	if w, ok := microbench.ByName(name); ok {
		return w, true
	}
	return macrobench.ByName(name)
}

// Generated workloads: deterministic synthetic programs positioned on
// the microarchitectural feature space by a typed spec, for probing
// where a timing model's behavior breaks (cache-size, associativity,
// predictor-capacity cliffs). See internal/workgen for the axes and
// the attribution experiment for the cliff suites in use.
type (
	// WorkloadSpec parameterizes one generated workload; the zero
	// value is invalid — start from DefaultWorkloadSpec.
	WorkloadSpec = workgen.Spec
	// WorkloadFamily sweeps one spec axis across several levels.
	WorkloadFamily = workgen.Family
)

// DefaultWorkloadSpec returns the balanced mid-space starting point
// every generation axis perturbs.
func DefaultWorkloadSpec() WorkloadSpec { return workgen.DefaultSpec() }

// GenerateWorkload deterministically synthesizes the program a spec
// describes: the same spec always yields byte-identical code, and the
// workload's name is a pure function of the spec.
func GenerateWorkload(s WorkloadSpec) (Workload, error) { return workgen.Generate(s) }

// GenerateFamily synthesizes every member of a one-axis family, in
// level order.
func GenerateFamily(f WorkloadFamily) ([]Workload, error) { return f.Workloads() }

// PctErrorCPI returns the paper's simulator-error metric: the percent
// difference in CPI of a simulator against a reference. Negative
// means the simulator underestimates performance.
func PctErrorCPI(refIPC, simIPC float64) float64 {
	return stats.PctErrorCPI(refIPC, simIPC)
}

// Sampled simulation: run a workload under SMARTS-style systematic
// interval sampling and get CPI (and per-component CPI-stack)
// estimates with Student-t confidence intervals, at a fraction of the
// detailed-simulation cost. See internal/sample for the estimator and
// internal/core for the schedule mechanics every machine honors.
type (
	// SamplePlan is the sampling schedule: per Period instructions,
	// Warmup+Measure run in detail and the rest fast-forward.
	SamplePlan = core.SamplePlan
	// SampledEstimates holds the per-interval observations reduced to
	// point estimates with confidence intervals.
	SampledEstimates = sample.Result
)

// DefaultSamplePlan returns the canonical schedule for a run length:
// ten intervals, 10% warmup per period, a 5x detailed-instruction
// reduction.
func DefaultSamplePlan(limit uint64) SamplePlan { return sample.PlanFor(limit) }

// RunSampled runs the workload on the machine under the plan and
// returns the estimates at the default 95% confidence level.
func RunSampled(m Machine, w Workload, plan SamplePlan) (SampledEstimates, error) {
	return sample.Run(m, w, plan, 0)
}

// Checkpointed sampling: record a library of warmed checkpoints once,
// then run sampled simulations that restore each interval's
// checkpoint instead of fast-forwarding the whole stream — the
// measured path touches only the detailed windows, and the intervals
// run in parallel. See internal/checkpoint for the serialized state
// and internal/sample for the library mechanics.

// CheckpointLibrary is a recorded set of interval-boundary
// checkpoints for one (workload, warm-relevant configuration) pair.
type CheckpointLibrary = checkpoint.Library

// CheckpointLibraryPlan returns the canonical checkpointed-sampling
// schedule for a run length: one hundred intervals at a 10x
// detailed+warming-instruction reduction.
func CheckpointLibraryPlan(limit uint64) SamplePlan { return sample.LibraryPlanFor(limit) }

// BuildCheckpointLibrary records the checkpoint library for the
// workload under the plan (one functional-warming pass, a snapshot at
// each interval boundary). The machine must support checkpoint
// recording; all four timing models do.
func BuildCheckpointLibrary(m Machine, w Workload, plan SamplePlan) (*CheckpointLibrary, error) {
	return sample.BuildLibrary(m, w, plan)
}

// RunCheckpointSampled runs a sampled simulation against a recorded
// library: every interval restores its checkpoint and simulates only
// warmup+measure in detail, in parallel (parallelism 0 = one worker
// per core).
func RunCheckpointSampled(m Machine, w Workload, lib *CheckpointLibrary, plan SamplePlan, parallelism int) (SampledEstimates, error) {
	return sample.RunWithLibrary(m, w, lib, plan, parallelism, 0)
}

// Experiment re-exports: each function regenerates one table or
// figure of the paper against the in-repo reference machine.
type (
	// Options tunes experiment cost; the zero value runs full length.
	Options = validate.Options
	// Table2Result is the microbenchmark validation (Table 2).
	Table2Result = validate.Table2Result
	// Table3Result is the macrobenchmark validation (Table 3).
	Table3Result = validate.Table3Result
	// Table4Result is the feature ablation (Table 4).
	Table4Result = validate.Table4Result
	// Table5Result is the stability study (Table 5).
	Table5Result = validate.Table5Result
	// Figure2Result is the register-file sensitivity study (Figure 2).
	Figure2Result = validate.Figure2Result
	// MemCalResult is the Section 4.2 memory-parameter sweep.
	MemCalResult = validate.MemCalResult
)

// Table2 regenerates the microbenchmark validation table.
func Table2(opt Options) (Table2Result, error) { return validate.Table2(opt) }

// Table3 regenerates the macrobenchmark validation table.
func Table3(opt Options) (Table3Result, error) { return validate.Table3(opt) }

// Table4 regenerates the feature-ablation table.
func Table4(opt Options) (Table4Result, error) { return validate.Table4(opt) }

// Table5 regenerates the stability matrix.
func Table5(opt Options) (Table5Result, error) { return validate.Table5(opt) }

// Figure2 regenerates the register-file sensitivity study.
func Figure2(opt Options) (Figure2Result, error) { return validate.Figure2(opt) }

// MemoryCalibration reruns the Section 4.2 DRAM parameter sweep.
func MemoryCalibration(opt Options) (MemCalResult, error) {
	return validate.MemoryCalibration(opt)
}

// Assembler access, for building custom workloads against the
// machines.
type (
	// ProgramBuilder assembles AXP-lite programs; see NewProgram.
	ProgramBuilder = asm.Builder
	// Program is an assembled program.
	Program = asm.Program
	// Inst is one AXP-lite instruction.
	Inst = isa.Inst
	// Reg names an architectural register.
	Reg = isa.Reg
	// Op is an AXP-lite opcode.
	Op = isa.Op
)

// NewProgram returns a builder for a custom workload program.
func NewProgram(name string) *ProgramBuilder { return asm.NewBuilder(name) }

// ParseProgram assembles AXP-lite source text (the disassembler's
// syntax plus labels and data directives; see internal/asm.Parse).
func ParseProgram(name, src string) (*Program, error) { return asm.Parse(name, src) }

// NewWorkload wraps an assembled program as a runnable workload.
func NewWorkload(name string, p *Program) Workload {
	return Workload{Name: name, Prog: p, Category: "custom"}
}

// SaveProgram writes a program in the AXPL object format.
func SaveProgram(w io.Writer, p *Program) error { return asm.WriteObject(w, p) }

// LoadProgram reads a program from the AXPL object format.
func LoadProgram(r io.Reader) (*Program, error) { return asm.ReadObject(r) }

// RecordTrace executes the workload functionally and writes its
// dynamic instruction stream in the AXPT trace format, returning the
// record count.
func RecordTrace(w io.Writer, wl Workload) (uint64, error) {
	tw, err := cpu.NewTraceWriter(w)
	if err != nil {
		return 0, err
	}
	return tw.Record(wl.Source())
}

// WorkloadFromTrace returns a workload that replays a recorded AXPT
// trace file through any machine (trace-driven simulation from disk).
// The file is reopened on every run.
func WorkloadFromTrace(name, path string) Workload {
	return Workload{
		Name:     name,
		Category: "trace",
		NewSource: func() cpu.Source {
			f, err := os.Open(path)
			if err != nil {
				return errSource{fmt.Errorf("repro: %w", err)}
			}
			tr, err := cpu.NewTraceReader(f)
			if err != nil {
				return errSource{err}
			}
			return tr
		},
	}
}

// errSource is an empty stream standing in for an unopenable trace.
type errSource struct{ err error }

func (e errSource) Next() (cpu.Record, bool) { return cpu.Record{}, false }
