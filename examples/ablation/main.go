// Ablation: regenerate the paper's Table 4 — the performance
// contribution of each low-level 21264 feature — and rank the
// features, reproducing the paper's conclusion that early jump
// address calculation, load-use speculation, speculative predictor
// update and store-wait prediction matter most.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	t4, err := repro.Table4(repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(t4)

	ranked := make([]int, len(t4.Cols))
	for i := range ranked {
		ranked[i] = i
	}
	sort.Slice(ranked, func(a, b int) bool {
		return t4.Cols[ranked[a]].MeanPct < t4.Cols[ranked[b]].MeanPct
	})
	fmt.Println("\nfeatures ranked by performance contribution (most costly to remove first):")
	for _, i := range ranked {
		c := t4.Cols[i]
		fmt.Printf("  %-5s %+6.2f%% (stddev %.2f)\n", c.Feature, c.MeanPct, c.StdDevPct)
	}
}
