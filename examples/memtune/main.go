// Memtune: rerun the paper's Section 4.2 memory-system calibration:
// sweep DRAM RAS/CAS/precharge/controller latencies and the page
// policy, and find the configuration minimizing error against the
// reference machine on M-M, STREAM and lmbench.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cal, err := repro.MemoryCalibration(repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cal)
	fmt.Println("\nthe paper's pick was: open page, RAS 2, CAS 4, precharge 2, controller 2")
}
