// Tracing: record a workload's dynamic instruction stream to a trace
// file, replay it through two machines, and watch one instruction's
// trip through the validated pipeline — the trace-driven workflow
// plus the ptrace-style pipeline view.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

func main() {
	dir, err := os.MkdirTemp("", "repro-tracing")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ccb.axpt")

	w, _ := repro.WorkloadByName("C-Cb")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	n, err := repro.RecordTrace(f, w)
	if err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("recorded %d dynamic instructions to %s\n\n", n, filepath.Base(path))

	replay := repro.WorkloadFromTrace("C-Cb", path)
	for _, m := range []repro.Machine{repro.SimAlpha(), repro.SimOutorder()} {
		res, err := m.Run(replay)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s replayed at IPC %.3f\n", res.Machine, res.IPC())
	}

	// A window of the pipeline event trace.
	fmt.Println("\npipeline view (instructions 40-55):")
	var sb strings.Builder
	traced := repro.SimAlphaTraced(&sb)
	if _, err := traced.Run(replay); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	for i := 40; i < 56 && i < len(lines); i++ {
		fmt.Println(lines[i])
	}
}
