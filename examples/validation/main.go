// Validation: regenerate the paper's Table 2 (microbenchmark
// validation) through the public API and report the headline numbers:
// the mean error of the unvalidated simulator versus the validated
// one (74.7% -> 2.0% in the paper).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	t2, err := repro.Table2(repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(t2)
	fmt.Printf("\nheadline: validation reduced mean error from %.1f%% to %.1f%%\n",
		t2.MeanInitialErr, t2.MeanAlphaErr)
	fmt.Printf("the abstract RUU simulator differs by %.1f%% on the same suite\n",
		t2.MeanOutorderErr)
}
