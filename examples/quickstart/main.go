// Quickstart: assemble a small AXP-lite program with the public API,
// run it on the validated 21264 model and on the abstract RUU model,
// and compare what each simulator reports — the paper's question in
// twenty lines.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/isa"
)

func main() {
	// A loop that sums an in-cache array: ldq / addq / bne.
	b := repro.NewProgram("sum-array")
	b.Quads("arr", 1, 2, 3, 4, 5, 6, 7, 8)
	b.Label("main")
	b.LoadAddr(isa.S0, "arr")
	b.LoadImm(isa.T12, 5000)
	b.Label("loop")
	b.Mem(isa.OpLdq, isa.T0, 0, isa.S0)
	b.Op(isa.OpAddq, isa.T1, isa.T0, isa.T1)
	b.OpI(isa.OpAddq, isa.S0, 8, isa.S0)
	b.OpI(isa.OpAnd, isa.T12, 7, isa.T2)
	b.Br(isa.OpBne, isa.T2, "skip")
	b.LoadAddr(isa.S0, "arr") // wrap the pointer every 8 iterations
	b.Label("skip")
	b.OpI(isa.OpSubq, isa.T12, 1, isa.T12)
	b.Br(isa.OpBne, isa.T12, "loop")
	b.Halt()
	w := repro.NewWorkload("sum-array", b.MustAssemble())

	for _, m := range []repro.Machine{repro.SimAlpha(), repro.SimOutorder()} {
		res, err := m.Run(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s IPC %.3f  (%d instructions, %d cycles)\n",
			res.Machine, res.IPC(), res.Instructions, res.Cycles)
	}
	fmt.Println("\nSame program, two simulators, two answers — which is why")
	fmt.Println("the paper validates against a reference machine.")
}
