// Calibration: replay the paper's central exercise — tuning the
// unvalidated sim-initial simulator toward the native DS-10L — as an
// automated coordinate descent over the modeling-bug design space.
//
// Every catalogued sim-initial bug becomes a boolean axis; the
// descent repeatedly flips whichever axis most reduces the mean
// |CPI error| against the reference machine across the 21
// microbenchmarks, and the accepted moves form a convergence trace:
// the sim-initial → sim-alpha tuning journey, reproduced from the
// error signal alone.
//
// The walkthrough then reruns the identical descent to show the
// content-addressed cache at work: the second pass re-simulates
// nothing, and its trace is byte-identical to the first.
//
// This is an in-module example, so it drives internal/sweep directly;
// the same exploration is served over HTTP by POST /v1/sweep
// (analysis "calibration") and by `probe sweep -analysis calibration`.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/microbench"
	"repro/internal/model"
	"repro/internal/simcache"
	"repro/internal/sweep"
)

func main() {
	limit := flag.Uint64("limit", 8_000, "dynamic instructions per cell (0 = full workload length)")
	rounds := flag.Int("rounds", 0, "coordinate-descent round bound (0 = default)")
	flag.Parse()
	ctx := context.Background()

	// The design space: sim-initial's bug catalogue, one boolean axis
	// per modeling bug, over the sim-initial base configuration. The
	// origin point (every bug enabled) IS sim-initial.
	space := sweep.SimInitialBugSpace()
	fmt.Printf("design space: %d axes, %d points\n", len(space.Axes), space.Size())

	// The engine: the 21 microbenchmarks per point, memoized through a
	// content-addressed cache shared by both descents below.
	eng := &sweep.Engine{
		Workloads: microbench.Suite(),
		Limit:     *limit,
		Cache:     simcache.New(4096),
	}

	// The reference: the native DS-10L measured through the DCPI
	// profiler emulation — the machine the paper calibrated against.
	ref, err := eng.Reference(ctx, func() core.Machine { return model.NewNative() })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== first descent (cold cache) ==")
	cal, err := sweep.Calibrate(ctx, eng, space, nil, ref, *rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cal.Trace())
	fmt.Printf("cells %d, cache hits %d (%.0f%%)\n",
		cal.Stats.Cells, cal.Stats.CacheHits, 100*cal.Stats.HitRate())

	// The bugs the descent kept enabled are as interesting as the ones
	// it fixed: a "bug" that helps match the reference is modeling a
	// real property of the hardware (the paper's trap-granularity
	// observation).
	var kept []string
	for i, a := range space.Axes {
		if cal.Final[i] == 0 { // first value = bug enabled
			kept = append(kept, a.Name)
		}
	}
	if len(kept) > 0 {
		fmt.Printf("bugs still enabled at convergence: %s\n", strings.Join(kept, ", "))
		fmt.Println("(these \"bugs\" match the reference better than their fixes do)")
	}

	fmt.Println("\n== second descent (warm cache) ==")
	again, err := sweep.Calibrate(ctx, eng, space, nil, ref, *rounds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cells %d, cache hits %d (%.0f%%)\n",
		again.Stats.Cells, again.Stats.CacheHits, 100*again.Stats.HitRate())
	if again.Trace() == cal.Trace() {
		fmt.Println("trace is byte-identical to the first descent")
	} else {
		log.Fatal("determinism violation: warm-cache trace differs")
	}
}
